"""Protocol registry: build L1/L2 controller sets by protocol name.

Central place that knows, for each protocol, which controller classes to
instantiate, how many NoC virtual channels it needs for deadlock freedom
(energy model input), and which consistency model the core must enforce.

The registry is extensible: :func:`register_protocol` adds a new name with
its own builder, so experiments (and the differential fuzzer's toy-protocol
fixtures) can run custom controller sets through the unchanged simulator.
:func:`available_protocols` / :func:`sc_protocols` / :func:`wo_protocols`
are the canonical enumerations used by sweeps and fuzz campaigns.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.coherence.ideal import IdealL1Controller, IdealL2Controller
from repro.coherence.mesi import MESIL1Controller, MESIL2Controller
from repro.coherence.tc import TCL1Controller, TCL2Controller
from repro.config import GPUConfig, PROTOCOLS, consistency_of
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.rcc_l2 import RCCL2Controller
from repro.core.rcc_wo import RCCWOL1Controller
from repro.core.rollover import RolloverManager
from repro.core.timestamps import timestamp_guard_band
from repro.errors import ConfigError

#: Virtual channels needed for deadlock freedom (paper Table III: 5 for
#: MESI, 2 otherwise).
VIRTUAL_CHANNELS: Dict[str, int] = {
    "MESI": 5,
    "SC-IDEAL": 5,
    "TCS": 2,
    "TCW": 2,
    "RCC": 2,
    "RCC-WO": 2,
}


class ProtocolInstance:
    """The constructed controllers for one simulation."""

    def __init__(self, name: str, l1s: List[Any], l2s: List[Any],
                 rollover: RolloverManager = None):
        self.name = name
        self.consistency = consistency_of(name)
        self.virtual_channels = VIRTUAL_CHANNELS[name]
        self.l1s = l1s
        self.l2s = l2s
        self.rollover = rollover


# ----------------------------------------------------------------------
# Per-protocol builders
# ----------------------------------------------------------------------

def _use_flat_kernel() -> bool:
    """Flat-vs-object controller selection, re-checked per build (the
    differential tests and ``--compare-legacy`` flip it between runs)."""
    from repro.kernel import flat_kernel_enabled
    return flat_kernel_enabled()


def _build_rcc(name: str, engine, cfg: GPUConfig, noc, amap, drams,
               backing) -> ProtocolInstance:
    rollover = RolloverManager(
        engine,
        threshold=cfg.ts.max_timestamp - timestamp_guard_band(cfg.ts.lease_max),
    )
    if _use_flat_kernel():
        from repro.kernel.rcc import (FlatRCCL1Controller,
                                      FlatRCCL2Controller,
                                      FlatRCCWOL1Controller)
        l1_cls = FlatRCCL1Controller if name == "RCC" else FlatRCCWOL1Controller
        l2_cls = FlatRCCL2Controller
    else:
        l1_cls = RCCL1Controller if name == "RCC" else RCCWOL1Controller
        l2_cls = RCCL2Controller
    l1s = [l1_cls(i, engine, cfg, noc, amap, rollover)
           for i in range(cfg.n_cores)]
    l2s = [l2_cls(j, engine, cfg, noc, amap, drams[j], backing, rollover)
           for j in range(cfg.l2_banks)]
    rollover.wire(l1s, l2s, drams)
    return ProtocolInstance(name, l1s, l2s, rollover)


def _build_tc(name: str, engine, cfg: GPUConfig, noc, amap, drams,
              backing) -> ProtocolInstance:
    strong = name == "TCS"
    l1s = [TCL1Controller(i, engine, cfg, noc, amap, strong)
           for i in range(cfg.n_cores)]
    l2s = [TCL2Controller(j, engine, cfg, noc, amap, drams[j], backing,
                          strong)
           for j in range(cfg.l2_banks)]
    return ProtocolInstance(name, l1s, l2s)


def _build_mesi(name: str, engine, cfg: GPUConfig, noc, amap, drams,
                backing) -> ProtocolInstance:
    if _use_flat_kernel():
        from repro.kernel.mesi import (FlatMESIL1Controller,
                                       FlatMESIL2Controller)
        l1_cls, l2_cls = FlatMESIL1Controller, FlatMESIL2Controller
    else:
        l1_cls, l2_cls = MESIL1Controller, MESIL2Controller
    l1s = [l1_cls(i, engine, cfg, noc, amap)
           for i in range(cfg.n_cores)]
    l2s = [l2_cls(j, engine, cfg, noc, amap, drams[j], backing)
           for j in range(cfg.l2_banks)]
    return ProtocolInstance(name, l1s, l2s)


def _build_ideal(name: str, engine, cfg: GPUConfig, noc, amap, drams,
                 backing) -> ProtocolInstance:
    l1s = [IdealL1Controller(i, engine, cfg, noc, amap)
           for i in range(cfg.n_cores)]
    l2s = [IdealL2Controller(j, engine, cfg, noc, amap, drams[j], backing)
           for j in range(cfg.l2_banks)]
    for l2 in l2s:
        l2.wire_l1s(l1s)
    return ProtocolInstance(name, l1s, l2s)


#: name -> builder(name, engine, cfg, noc, amap, drams, backing).
_BUILDERS: Dict[str, Callable[..., ProtocolInstance]] = {
    "RCC": _build_rcc,
    "RCC-WO": _build_rcc,
    "TCS": _build_tc,
    "TCW": _build_tc,
    "MESI": _build_mesi,
    "SC-IDEAL": _build_ideal,
}


# ----------------------------------------------------------------------
# Enumeration / extension API
# ----------------------------------------------------------------------

def available_protocols() -> List[str]:
    """All registered protocol names, in a stable order."""
    return sorted(_BUILDERS)


def sc_protocols() -> List[str]:
    """Registered protocols whose cores enforce sequential consistency."""
    return [p for p in available_protocols() if consistency_of(p) == "sc"]


def wo_protocols() -> List[str]:
    """Registered protocols running weakly ordered (fence-based)."""
    return [p for p in available_protocols() if consistency_of(p) == "wo"]


def register_protocol(name: str,
                      builder: Callable[..., ProtocolInstance],
                      consistency: str = "sc",
                      virtual_channels: int = 2,
                      replace: bool = False) -> None:
    """Register a custom protocol under ``name``.

    ``builder(name, engine, cfg, noc, amap, drams, backing)`` must return a
    :class:`ProtocolInstance`. ``consistency`` is ``"sc"`` or ``"wo"`` (the
    core issue policy), ``virtual_channels`` feeds the energy model. Used by
    tests to inject deliberately broken toy protocols for differential
    checking without touching the shipped ones.
    """
    if consistency not in ("sc", "wo"):
        raise ConfigError(f"consistency must be 'sc' or 'wo', "
                          f"got {consistency!r}")
    if name in _BUILDERS and not replace:
        raise ConfigError(f"protocol {name!r} is already registered")
    _BUILDERS[name] = builder
    PROTOCOLS[name] = consistency
    VIRTUAL_CHANNELS[name] = virtual_channels


def unregister_protocol(name: str) -> None:
    """Remove a protocol added by :func:`register_protocol`."""
    if name in ("RCC", "RCC-WO", "TCS", "TCW", "MESI", "SC-IDEAL"):
        raise ConfigError(f"refusing to unregister built-in {name!r}")
    _BUILDERS.pop(name, None)
    PROTOCOLS.pop(name, None)
    VIRTUAL_CHANNELS.pop(name, None)


def build_protocol(name: str, engine, cfg: GPUConfig, noc, amap, drams,
                   backing) -> ProtocolInstance:
    """Instantiate all L1 and L2 controllers for protocol ``name``."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigError(f"unknown protocol {name!r}; choose from "
                          f"{available_protocols()}")
    return builder(name, engine, cfg, noc, amap, drams, backing)
