"""Protocol registry: build L1/L2 controller sets by protocol name.

Central place that knows, for each protocol, which controller classes to
instantiate, how many NoC virtual channels it needs for deadlock freedom
(energy model input), and which consistency model the core must enforce.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.coherence.ideal import IdealL1Controller, IdealL2Controller
from repro.coherence.mesi import MESIL1Controller, MESIL2Controller
from repro.coherence.tc import TCL1Controller, TCL2Controller
from repro.config import GPUConfig, consistency_of
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.rcc_l2 import RCCL2Controller
from repro.core.rcc_wo import RCCWOL1Controller
from repro.core.rollover import RolloverManager
from repro.core.timestamps import timestamp_guard_band
from repro.errors import ConfigError

#: Virtual channels needed for deadlock freedom (paper Table III: 5 for
#: MESI, 2 otherwise).
VIRTUAL_CHANNELS: Dict[str, int] = {
    "MESI": 5,
    "SC-IDEAL": 5,
    "TCS": 2,
    "TCW": 2,
    "RCC": 2,
    "RCC-WO": 2,
}


class ProtocolInstance:
    """The constructed controllers for one simulation."""

    def __init__(self, name: str, l1s: List[Any], l2s: List[Any],
                 rollover: RolloverManager = None):
        self.name = name
        self.consistency = consistency_of(name)
        self.virtual_channels = VIRTUAL_CHANNELS[name]
        self.l1s = l1s
        self.l2s = l2s
        self.rollover = rollover


def build_protocol(name: str, engine, cfg: GPUConfig, noc, amap, drams,
                   backing) -> ProtocolInstance:
    """Instantiate all L1 and L2 controllers for protocol ``name``."""
    if name in ("RCC", "RCC-WO"):
        rollover = RolloverManager(
            engine,
            threshold=cfg.ts.max_timestamp - timestamp_guard_band(cfg.ts.lease_max),
        )
        l1_cls = RCCL1Controller if name == "RCC" else RCCWOL1Controller
        l1s = [l1_cls(i, engine, cfg, noc, amap, rollover)
               for i in range(cfg.n_cores)]
        l2s = [RCCL2Controller(j, engine, cfg, noc, amap, drams[j], backing,
                               rollover)
               for j in range(cfg.l2_banks)]
        rollover.wire(l1s, l2s, drams)
        return ProtocolInstance(name, l1s, l2s, rollover)

    if name in ("TCS", "TCW"):
        strong = name == "TCS"
        l1s = [TCL1Controller(i, engine, cfg, noc, amap, strong)
               for i in range(cfg.n_cores)]
        l2s = [TCL2Controller(j, engine, cfg, noc, amap, drams[j], backing,
                              strong)
               for j in range(cfg.l2_banks)]
        return ProtocolInstance(name, l1s, l2s)

    if name == "MESI":
        l1s = [MESIL1Controller(i, engine, cfg, noc, amap)
               for i in range(cfg.n_cores)]
        l2s = [MESIL2Controller(j, engine, cfg, noc, amap, drams[j], backing)
               for j in range(cfg.l2_banks)]
        return ProtocolInstance(name, l1s, l2s)

    if name == "SC-IDEAL":
        l1s = [IdealL1Controller(i, engine, cfg, noc, amap)
               for i in range(cfg.n_cores)]
        l2s = [IdealL2Controller(j, engine, cfg, noc, amap, drams[j], backing)
               for j in range(cfg.l2_banks)]
        for l2 in l2s:
            l2.wire_l1s(l1s)
        return ProtocolInstance(name, l1s, l2s)

    raise ConfigError(f"unknown protocol {name!r}")
