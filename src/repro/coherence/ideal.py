"""SC-ideal: sequential consistency with *instant* coherence permissions.

This is the motivation study's upper bound (paper Fig. 1d): the memory
system still charges the unavoidable write-through round trip to L2, but
acquiring read/write permission is free — a store's invalidations happen in
zero time with no traffic and no ack collection, so the ack leaves the L2
after just the bank access latency.

Implemented as the MESI directory with a magic invalidation path: the L2
removes sharers' L1 copies directly (simulator reach-around, deliberately
unphysical) instead of exchanging INV/INV_ACK messages.
"""

from __future__ import annotations

from typing import List

from repro.coherence.mesi import MESIL1Controller, MESIL2Controller
from repro.common.messages import Message
from repro.common.types import L1State
from repro.mem.cache_array import CacheLine
from repro.sanitize.events import EventKind as EV


class IdealL1Controller(MESIL1Controller):
    """MESI L1; invalidations arrive by magic, never as messages."""

    protocol_name = "SC-IDEAL"

    def magic_invalidate(self, block: int) -> None:
        """Zero-latency invalidation invoked directly by the L2."""
        self.stats.invalidations_received += 1
        line = self.cache.lookup(block)
        entry = self.mshr.get(block)
        dropped = line is not None and line.state is L1State.V
        if self.sanitizer is not None:
            self._emit(EV.L1_INV, block, dropped=dropped, magic=True)
        if dropped:
            self.cache.remove(block)
        if entry is not None and entry.meta.get("gets_out"):
            entry.meta["inv_after_fill"] = True
            # Peekaboo cut: only loads already waiting may use the fill.
            entry.meta.setdefault("safe_count", len(entry.waiting_loads))


class IdealL2Controller(MESIL2Controller):
    """MESI directory with free, instant invalidations."""

    protocol_name = "SC-IDEAL"

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing)
        self._l1s: List[IdealL1Controller] = []

    def wire_l1s(self, l1s: List[IdealL1Controller]) -> None:
        self._l1s = list(l1s)

    def _on_getx(self, msg: Message, atomic: bool) -> None:
        block = msg.addr
        line = self.cache.lookup(block)
        if line is not None and line.state.name == "V":
            if not msg.meta.get("_counted"):
                msg.meta["_counted"] = True
                if atomic:
                    self.stats.atomics += 1
                else:
                    self.stats.writes += 1
            self.stats.hits += 1
            # Instant permissions: drop every sharer's copy right now —
            # including the requester's own L1 (sibling warps may have
            # refetched the block since the writer dropped its copy).
            for sharer in sorted(line.sharers):
                self.stats.invalidations_sent += 1
                self._l1_by_endpoint(sharer).magic_invalidate(block)
            line.sharers.clear()
            self._apply_write(msg, line, atomic)
            return
        super()._on_getx(msg, atomic)

    def _l1_by_endpoint(self, endpoint) -> IdealL1Controller:
        return self._l1s[endpoint[1]]

    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        if self.sanitizer is not None:
            self._emit(EV.L2_EVICT, line.addr, sharers=len(line.sharers))
        for sharer in sorted(line.sharers):
            self._l1_by_endpoint(sharer).magic_invalidate(line.addr)
        line.sharers.clear()
        if line.dirty:
            self.writeback_to_dram(line.addr, line.value)
