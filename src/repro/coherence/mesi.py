"""MESI-style directory coherence with write-through L1s — the paper's SC
baseline (Figs. 1, 8, 9 are normalized to it).

The L2 directory tracks the sharer set of every block. A store (GETX, which
carries the write-through data) must **invalidate every sharer and collect
their acks** before it can be acknowledged — this preserves write atomicity
(and hence SC with the in-order core policy) but makes store latency a
round-trip *plus* an invalidation round-trip under sharing, which is exactly
the overhead the paper measures in Fig. 1c.

While an invalidation is in flight the directory blocks the line (requests
retry), so no core can observe the new value before the store completes.
MESI also needs five virtual networks for deadlock freedom (request /
response / invalidate / inv-ack / writeback), which the energy model charges
it for.

State bookkeeping follows the same representation as the other protocols:
data-bearing states in the tag array, store transients in the MSHR. The
directory content lives in ``line.sharers`` at the L2.
"""

from __future__ import annotations

from heapq import heappush
from typing import List, Optional

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, MsgKind
from repro.coherence.base import L1ControllerBase, L2ControllerBase
from repro.gpu.warp import MemOpRecord, Warp
from repro.mem.cache_array import CacheLine
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

RETRY_DELAY = 8


class MESIL1Controller(L1ControllerBase):
    """Write-through L1 under the MESI directory."""

    protocol_name = "MESI"

    def __init__(self, core_id, engine, cfg, noc, amap):
        super().__init__(core_id, engine, cfg, noc, amap, L1State.I)

    # ------------------------------------------------------------------
    def access(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        if record.kind is MemOpKind.LOAD:
            return self._load(record, warp)
        return self._store_or_atomic(record, warp)

    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        # Mirrors the STALL exits of _load/_store_or_atomic below — keep in
        # sync (True must imply access() would STALL; see the base class).
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        mshr = self.mshr
        entry = mshr._entries.get(block)
        if kind is MemOpKind.LOAD:
            line = self.cache._map.get(block)
            if line is not None and line.state is L1State.V:
                return False
            if entry is None and len(mshr._entries) >= mshr.capacity:
                return True
            return line is None and not self.cache.can_allocate(block)
        if entry is not None and entry.pending_stores:
            return True
        return entry is None and len(mshr._entries) >= mshr.capacity

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        line = self.cache._map.get(block)
        if line is not None and line.state is L1State.V:
            self.stats.loads += 1
            self.stats.load_hits += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block)
            record.read_value = line.value
            record.logical_ts = self.engine.now
            record.order_key = -1
            line.touch()
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        if line is None and not self.cache.can_allocate(block):
            return AccessOutcome.STALL
        # Count only after the stall exits, so replayed accesses count once.
        self.stats.loads += 1
        self.stats.load_misses += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block)
        entry = self.mshr.allocate(block)
        entry.waiting_loads.append((record, warp))
        if entry.meta.get("gets_out"):
            return AccessOutcome.MISS
        if line is None:
            line = self.cache.insert(block, L1State.IV, self._on_evict)
        line.state = L1State.IV
        line.pinned = True
        entry.meta["gets_out"] = True
        self.send_to_l2(MsgKind.GETS, block)
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is not None and entry.pending_stores:
            # Same-block stores serialize until the previous ack returns.
            return AccessOutcome.STALL
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        self.count_access(record)
        if self.sanitizer is not None:
            self._emit(EV.L1_STORE_ISSUE, block,
                       atomic=record.kind is MemOpKind.ATOMIC)
        entry = self.mshr.allocate(block)
        entry.pending_stores.append((record, warp))
        line = self.cache._map.get(block)
        if line is not None and line.state is L1State.V:
            self.cache.remove(block)  # write-through, write-no-allocate
            self.stats.self_invalidations += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_SELF_INVAL, block, reason="write_through")
        elif line is not None:
            line.pinned = True
        kind = (MsgKind.ATOMIC if record.kind is MemOpKind.ATOMIC
                else MsgKind.GETX)
        self.send_to_l2(kind, block, value=record.value,
                        meta={"record": record, "warp": warp})
        return AccessOutcome.MISS

    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        # Silent eviction; the directory over-approximates sharers (its INV
        # to a non-sharer is acked harmlessly), as in coarse GPU directories.
        if self.sanitizer is not None:
            self._emit(EV.L1_EVICT, line.addr, state=line.state.name)

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.kind is MsgKind.DATA:
            self._on_data(msg)
        elif msg.kind is MsgKind.ACK:
            self._on_ack(msg)
        elif msg.kind is MsgKind.INV:
            self._on_inv(msg)
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    def _on_data(self, msg: Message) -> None:
        block = msg.addr
        entry = self.mshr.get(block)
        if msg.meta.get("atomic"):
            self._complete_store(msg, read_value=msg.value)
            return
        line = self.cache._map.get(block)
        inv_after = entry is not None and entry.meta.pop("inv_after_fill", False)
        # Peekaboo race: loads that merged into the MSHR *after* an INV
        # arrived must not consume this (now stale) fill — their warp may
        # already have observed newer data elsewhere. Deliver the fill only
        # to the loads that were waiting when the INV arrived and refetch
        # for the rest.
        safe_count = (entry.meta.pop("safe_count", None)
                      if entry is not None else None)
        if line is not None:
            if inv_after:
                self.cache.remove(block)
            else:
                line.state = L1State.V
                line.value = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block,
                       installed=line is not None and not inv_after)
        if entry is not None:
            waiting = entry.waiting_loads
            if inv_after and safe_count is not None:
                deliver, keep = waiting[:safe_count], waiting[safe_count:]
            else:
                deliver, keep = waiting, []
            granted_at = msg.meta.get("granted_at", self.engine.now)
            for record, warp in deliver:
                record.read_value = msg.value
                # Witness position: when the directory granted the value
                # (but never before this op issued — merged loads).
                record.logical_ts = max(granted_at, record.issue_cycle)
                record.order_key = msg.meta.get("arrival", -1)
                self.complete(record, warp)
            entry.waiting_loads = keep
            if keep:
                entry.meta["gets_out"] = True
                self.send_to_l2(MsgKind.GETS, block)
            else:
                entry.meta["gets_out"] = False
            self._maybe_release(block)

    def _on_ack(self, msg: Message) -> None:
        self._complete_store(msg)

    def _complete_store(self, msg: Message, read_value=None) -> None:
        block = msg.addr
        record: MemOpRecord = msg.meta["record"]
        warp: Warp = msg.meta["warp"]
        entry = self.mshr.get(block)
        if entry is None or (record, warp) not in entry.pending_stores:
            raise self.unhandled("II", msg.kind, f"no pending store {record!r}")
        entry.pending_stores.remove((record, warp))
        record.logical_ts = msg.meta.get("completed_at", self.engine.now)
        record.order_key = msg.meta.get("arrival", -1)
        if read_value is not None:
            record.read_value = read_value
        if self.sanitizer is not None:
            self._emit(EV.L1_STORE_ACK, block,
                       completed_at=record.logical_ts)
        self.complete(record, warp)
        self._maybe_release(block)

    def _on_inv(self, msg: Message) -> None:
        block = msg.addr
        self.stats.invalidations_received += 1
        line = self.cache._map.get(block)
        entry = self.mshr.get(block)
        dropped = line is not None and line.state is L1State.V
        if self.sanitizer is not None:
            self._emit(EV.L1_INV, block, dropped=dropped,
                       recall=bool(msg.meta.get("recall")))
        if dropped:
            self.cache.remove(block)
        if entry is not None and entry.meta.get("gets_out"):
            # Fetch in flight: the fill must not install a stale copy, and
            # only loads already waiting may consume it (peekaboo). This
            # applies whether or not a tag entry survives (it may have been
            # dropped by an earlier invalidated fill).
            entry.meta["inv_after_fill"] = True
            entry.meta.setdefault("safe_count", len(entry.waiting_loads))
        self.send_to_l2(MsgKind.INV_ACK, block,
                        meta={"requester": msg.meta.get("requester"),
                              "recall": bool(msg.meta.get("recall"))})

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            line = self.cache._map.get(block)
            if line is not None:
                line.pinned = False
                if line.state is L1State.IV:
                    self.cache.remove(block)


class MESIL2Controller(L2ControllerBase):
    """Directory bank: sharer tracking + invalidate-before-store-ack."""

    protocol_name = "MESI"

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing,
                         L2State.I)
        #: Outstanding recall-INV acks per evicted block. While any are
        #: pending the block must not be re-allocated: a refetched line
        #: starts with an empty sharer set, so a store could apply while
        #: an old sharer's recall is still in flight — breaking write
        #: atomicity (the sanitizer's mesi.write.single_writer catch).
        self._recalls: dict = {}

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.kind is MsgKind.GETS:
            self._on_gets(msg)
        elif msg.kind in (MsgKind.GETX, MsgKind.ATOMIC):
            self._on_getx(msg, atomic=msg.kind is MsgKind.ATOMIC)
        elif msg.kind is MsgKind.INV_ACK:
            self._on_inv_ack(msg)
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    def _retry(self, msg: Message) -> None:
        # Built once per message and cached in its meta. While the blocking
        # condition still holds the poll re-arms itself with pure reads only;
        # the guard is exactly the set of conditions under which re-entering
        # the handler would call ``_retry`` again without side effects (stats
        # are ``_counted``-guarded, and the handler's ``can_allocate`` fail is
        # conservatively left to the full path). Anything else re-enters the
        # kind-specific handler, identical to re-entering ``on_message``
        # (pure dispatch; INV_ACKs are never retried). Never cancelled ->
        # the engine's no-handle path, which preserves (cycle, seq) order.
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            cache_map = self.cache._map
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            recalls = self._recalls
            engine = self.engine
            valid = L2State.V

            def blocked() -> bool:
                line = cache_map.get(block)
                if line is not None:
                    return (line.state is valid
                            and line.meta.get("inv_pending") is not None)
                if recalls.get(block):
                    return True
                return len(entries) >= capacity and block not in entries

            ring = getattr(engine, "_ring", None)  # None under the legacy engine
            if msg.kind is MsgKind.GETS:
                def cb() -> None:
                    if blocked():
                        # schedule_call's in-window bare-callback path,
                        # inlined (see the TC retry for the rationale).
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_gets(msg)
            else:
                atomic = msg.kind is MsgKind.ATOMIC

                def cb() -> None:
                    if blocked():
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_getx(msg, atomic)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    @staticmethod
    def _busy(line: CacheLine) -> bool:
        return line.meta.get("inv_pending") is not None

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            self.stats.gets += 1
        block = msg.addr
        line = self.cache._map.get(block)
        if line is not None and line.state is L2State.V:
            if self._busy(line):
                self._retry(msg)
                return
            self.stats.hits += 1
            line.sharers.add(msg.src)
            line.touch()
            if self.sanitizer is not None:
                self._emit(EV.L2_READ_GRANT, block, peer=msg.src[1],
                           sharers=len(line.sharers))
            self.send(msg.src, MsgKind.DATA, block, value=line.value,
                      meta={"arrival": self.next_arrival(),
                            "granted_at": self.engine.now},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if line is not None and line.state is L2State.IV:
            entry = self.mshr.allocate(block)
            entry.waiting_loads.append(msg)
            return
        self._miss_fetch(msg, block, is_read=True)

    def _on_getx(self, msg: Message, atomic: bool) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            if atomic:
                self.stats.atomics += 1
            else:
                self.stats.writes += 1
        block = msg.addr
        line = self.cache._map.get(block)
        if line is not None and line.state is L2State.V:
            if self._busy(line):
                self._retry(msg)
                return
            self.stats.hits += 1
            # Invalidate every sharer, *including* the requesting core's L1:
            # the writer dropped its own copy at issue, but sibling warps of
            # the same SM may have refetched the block since.
            # Sorted so the invalidation order (and thus timing) never
            # depends on set iteration order, i.e. on PYTHONHASHSEED.
            sharers = sorted(line.sharers)
            if not sharers:
                self._apply_write(msg, line, atomic)
                return
            # Invalidate every sharer; block the line until all acks return.
            line.meta["inv_pending"] = {
                "remaining": len(sharers), "msg": msg, "atomic": atomic,
            }
            line.pinned = True  # not evictable while collecting acks
            line.sharers.clear()
            for sharer in sharers:
                self.stats.invalidations_sent += 1
                self.send(sharer, MsgKind.INV, block,
                          meta={"requester": msg.src},
                          delay=self.cfg.l2_per_bank.hit_latency)
            return
        if line is not None and line.state is L2State.IV:
            entry = self.mshr.allocate(block)
            entry.pending_stores.append((msg, atomic))
            return
        self._miss_fetch(msg, block, is_read=False, atomic=atomic)

    def _on_inv_ack(self, msg: Message) -> None:
        if msg.meta.get("recall"):
            remaining = self._recalls.get(msg.addr, 0) - 1
            if remaining > 0:
                self._recalls[msg.addr] = remaining
            else:
                self._recalls.pop(msg.addr, None)
            return
        line = self.cache._map.get(msg.addr)
        if line is None:
            return  # stale ack for an already-evicted block
        pending = line.meta.get("inv_pending")
        if pending is None:
            return  # nothing is waiting
        pending["remaining"] -= 1
        if pending["remaining"] == 0:
            del line.meta["inv_pending"]
            line.pinned = False
            self._apply_write(pending["msg"], line, pending["atomic"])

    def _apply_write(self, msg: Message, line: CacheLine, atomic: bool) -> None:
        old_value = line.value
        line.value = msg.value
        line.dirty = True
        line.touch()
        hit_lat = self.cfg.l2_per_bank.hit_latency
        # Serialization point: the write is applied (and the directory
        # unblocked) now; the ack merely travels back afterwards.
        completed_at = self.engine.now
        arrival = self.next_arrival()
        if self.sanitizer is not None:
            self._emit(EV.L2_ATOMIC_APPLY if atomic else EV.L2_WRITE_APPLY,
                       msg.addr, completed_at=completed_at, arrival=arrival)
        meta = {"record": msg.meta.get("record"), "warp": msg.meta.get("warp"),
                "arrival": arrival, "completed_at": completed_at}
        if atomic:
            meta["atomic"] = True
            self.send(msg.src, MsgKind.DATA, msg.addr, value=old_value,
                      meta=meta, delay=hit_lat)
        else:
            self.send(msg.src, MsgKind.ACK, msg.addr, meta=meta, delay=hit_lat)

    # ------------------------------------------------------------------
    def _miss_fetch(self, msg: Message, block: int, is_read: bool,
                    atomic: bool = False) -> None:
        if self._recalls.get(block):
            # The block was evicted with sharers and their recall acks are
            # still outstanding; refetching now would resurrect the line
            # with an empty sharer set while stale copies live on.
            self._retry(msg)
            return
        if not (self.mshr.has_free() or block in self.mshr) \
                or not self.cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        line = self.cache.insert(block, L2State.IV, self._on_evict)
        line.pinned = True
        line.sharers.clear()
        entry = self.mshr.allocate(block)
        if is_read:
            entry.waiting_loads.append(msg)
        else:
            entry.pending_stores.append((msg, atomic))
        self.fetch_from_dram(block, self._on_dram_data)

    def _on_dram_data(self, block: int) -> None:
        line = self.cache._map.get(block)
        entry = self.mshr.get(block)
        if line is None or entry is None:
            raise self.unhandled("I", "MEMDATA", f"orphan fill 0x{block:x}")
        line.state = L2State.V
        line.pinned = False
        line.value = self.read_backing(block)
        reads, entry.waiting_loads = entry.waiting_loads, []
        writes, entry.pending_stores = entry.pending_stores, []
        self.mshr.release_if_empty(block)
        for req in reads:
            self.on_message(req)
        for req, _atomic in writes:
            self.on_message(req)

    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        if self.sanitizer is not None:
            self._emit(EV.L2_EVICT, line.addr, sharers=len(line.sharers))
        # Inclusive directory: recall every sharer's copy (sorted: the
        # recall order must not depend on set iteration order) and block
        # re-allocation of the address until every ack returns.
        sharers = sorted(line.sharers)
        if sharers:
            self._recalls[line.addr] = (self._recalls.get(line.addr, 0)
                                        + len(sharers))
        for sharer in sharers:
            self.stats.invalidations_sent += 1
            self.send(sharer, MsgKind.INV, line.addr, meta={"recall": True})
        line.sharers.clear()
        if line.dirty:
            self.writeback_to_dram(line.addr, line.value)
