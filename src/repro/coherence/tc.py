"""TC-strong and TC-weak: physical-timestamp GPU coherence (Singh et al.,
HPCA 2013) — the paper's strongest prior-art baselines.

Both protocols lease L1 copies for a fixed number of *physical* cycles
against a globally synchronized on-chip clock (here: the simulation clock).
A copy self-invalidates when the clock passes its lease.

**TC-strong (TCS)** keeps write atomicity and can support SC: a store is
acknowledged only once every outstanding lease for the block has expired, so
the L2 stalls the ack until ``block.exp`` passes. That lease-expiry wait is
precisely the store latency RCC eliminates by moving to logical time.

**TC-weak (TCW)** acknowledges stores immediately but returns the *global
write completion time* (GWCT = the lease expiry at write time); the core
accumulates a per-warp GWCT and only FENCEs wait for it. Write atomicity is
lost (stale copies remain readable until their leases expire), so TCW cannot
implement SC — it runs under the WO core policy.

L1 organization matches :mod:`repro.core.rcc_l1`: the tag array holds
data-bearing states, store transients live in the MSHR. Unlike RCC's VI
optimization, a store invalidates the writer's own L1 copy (write-through,
write-no-allocate), and TCS additionally serializes same-block stores in the
L1 MSHR until the previous ack returns (the paper's observation that store
acks can block same-cacheline stores from other warps).
"""

from __future__ import annotations

from heapq import heappush
from typing import Dict, Optional

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, MsgKind
from repro.coherence.base import L1ControllerBase, L2ControllerBase
from repro.core.lease import lease_expired, lease_valid, post_lease
from repro.gpu.warp import MemOpRecord, Warp
from repro.mem.cache_array import CacheLine
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

RETRY_DELAY = 8


class TCL1Controller(L1ControllerBase):
    """Shared L1 for TC-strong and TC-weak (``strong`` selects the mode)."""

    def __init__(self, core_id, engine, cfg, noc, amap, strong: bool):
        super().__init__(core_id, engine, cfg, noc, amap, L1State.I)
        self.strong = strong
        self.protocol_name = "TCS" if strong else "TCW"
        #: TC-weak: per-warp global write completion time (max over acks).
        self._gwct: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def access(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        if record.kind is MemOpKind.LOAD:
            return self._load(record, warp)
        return self._store_or_atomic(record, warp)

    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        # Mirrors the STALL exits of _load/_store_or_atomic below — keep in
        # sync (True must imply access() would STALL; see the base class).
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        mshr = self.mshr
        entries = mshr._entries
        entry = entries.get(block)
        if kind is MemOpKind.LOAD:
            line = self.cache._map.get(block)
            if (line is not None and line.state is L1State.V
                    and self.engine.now <= line.exp):  # lease_valid, inlined
                return False
            if entry is None and len(entries) >= mshr.capacity:
                return True
            return line is None and not self.cache.can_allocate(block)
        if self.strong and entry is not None and entry.pending_stores:
            return True
        return entry is None and len(entries) >= mshr.capacity

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        line = self.cache._map.get(block)
        now = self.engine.now

        if (line is not None and line.state is L1State.V
                and lease_valid(now, line.exp)):
            self.stats.loads += 1
            self.stats.load_hits += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block, now=now, exp=line.exp)
            record.read_value = line.value
            record.logical_ts = now
            record.order_key = -1
            line.touch()
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT

        expired = (line is not None and line.state is L1State.V
                   and lease_expired(now, line.exp))

        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        if line is None and not self.cache.can_allocate(block):
            return AccessOutcome.STALL
        # Count only after the stall exits, so replayed accesses count once.
        self.stats.loads += 1
        if expired:
            self.stats.load_expired += 1
        self.stats.load_misses += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block, now=now, expired=expired)
        entry = self.mshr.allocate(block)
        entry.waiting_loads.append((record, warp))
        if entry.meta.get("gets_out"):
            return AccessOutcome.MISS
        if line is None:
            line = self.cache.insert(block, L1State.IV, self._on_evict)
        else:
            line.state = L1State.IV
        line.pinned = True
        entry.meta["gets_out"] = True
        self.send_to_l2(MsgKind.GETS, block, now=now,
                        meta={"expired": expired})
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        entries = self.mshr._entries
        entry = entries.get(block)
        if self.strong and entry is not None and entry.pending_stores:
            # TCS: same-block stores serialize in the MSHR until the ack.
            return AccessOutcome.STALL
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        self.count_access(record)
        if self.sanitizer is not None:
            self._emit(EV.L1_STORE_ISSUE, block, now=self.engine.now,
                       atomic=record.kind is MemOpKind.ATOMIC)
        entry = self.mshr.allocate(block)
        entry.pending_stores.append((record, warp))
        # Write-through, write-no-allocate: drop our own stale copy.
        line = self.cache._map.get(block)
        if line is not None and line.state is L1State.V:
            self.cache.remove(block)
            self.stats.self_invalidations += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_SELF_INVAL, block, reason="write_through")
        elif line is not None:
            line.pinned = True
        kind = (MsgKind.ATOMIC if record.kind is MemOpKind.ATOMIC
                else MsgKind.WRITE)
        self.send_to_l2(kind, block, now=self.engine.now, value=record.value,
                        meta={"record": record, "warp": warp})
        return AccessOutcome.MISS

    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_EVICT, line.addr, state=line.state.name,
                       exp=line.exp)

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.kind is MsgKind.DATA:
            self._on_data(msg)
        elif msg.kind is MsgKind.ACK:
            self._on_ack(msg)
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    def _on_data(self, msg: Message) -> None:
        block = msg.addr
        entry = self.mshr.get(block)
        if msg.meta.get("atomic"):
            self._complete_store(msg, read_value=msg.value)
            return
        line = self.cache._map.get(block)
        if line is not None:
            line.state = L1State.V
            line.exp = msg.exp
            line.value = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block, exp=msg.exp,
                       installed=line is not None)
        if entry is not None:
            granted_at = msg.meta.get("granted_at", self.engine.now)
            keep = []
            for record, warp in entry.waiting_loads:
                if lease_valid(record.issue_cycle, msg.exp):
                    record.read_value = msg.value
                    # Witness position: anywhere inside the lease window is
                    # sound; pick the latest of the grant and the issue (a
                    # merged load cannot sit before its own program order).
                    record.logical_ts = max(granted_at, record.issue_cycle)
                    record.order_key = msg.meta.get("arrival", -1)
                    self.complete(record, warp)
                else:
                    # The lease expired before this load even issued: the
                    # warp may already be past a newer write — refetch.
                    keep.append((record, warp))
            entry.waiting_loads = keep
            if keep:
                entry.meta["gets_out"] = True
                self.send_to_l2(MsgKind.GETS, block, now=self.engine.now)
            else:
                entry.meta["gets_out"] = False
                self._maybe_release(block)

    def _on_ack(self, msg: Message) -> None:
        self._complete_store(msg)

    def _complete_store(self, msg: Message, read_value=None) -> None:
        block = msg.addr
        record: MemOpRecord = msg.meta["record"]
        warp: Warp = msg.meta["warp"]
        entry = self.mshr.get(block)
        if entry is None or (record, warp) not in entry.pending_stores:
            raise self.unhandled("II", msg.kind, f"no pending store {record!r}")
        entry.pending_stores.remove((record, warp))
        record.logical_ts = msg.meta.get("completed_at", self.engine.now)
        record.order_key = msg.meta.get("arrival", -1)
        if read_value is not None:
            record.read_value = read_value
        if not self.strong:
            gwct = msg.meta.get("gwct", self.engine.now)
            key = warp.warp_id
            self._gwct[key] = max(self._gwct.get(key, 0), gwct)
            if self.sanitizer is not None:
                self._emit(EV.L1_STORE_ACK, block,
                           completed_at=record.logical_ts,
                           gwct=self._gwct[key], warp=key)
        elif self.sanitizer is not None:
            self._emit(EV.L1_STORE_ACK, block,
                       completed_at=record.logical_ts)
        self.complete(record, warp)
        self._maybe_release(block)

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            line = self.cache._map.get(block)
            if line is not None:
                line.pinned = False
                if line.state is L1State.IV:
                    self.cache.remove(block)

    # ------------------------------------------------------------------
    def fence_block_until(self, warp: Warp) -> int:
        """TCW: the fence waits until the warp's GWCT has passed."""
        if self.strong:
            return self.engine.now
        return self._gwct.get(warp.warp_id, 0)


class TCL2Controller(L2ControllerBase):
    """Shared L2 bank for TC-strong / TC-weak."""

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing,
                 strong: bool):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing,
                         L2State.I)
        self.strong = strong
        self.protocol_name = "TCS" if strong else "TCW"
        self.tc_cfg = cfg.tc
        #: Evicted-but-unexpired lease bookkeeping: addr -> exp. Each parked
        #: entry occupies an MSHR slot until its lease expires (Singh et
        #: al.'s mechanism; it is why TC eats into L2 MSHR capacity).
        self.parked: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Per-block lifetime prediction (Singh et al.)
    #
    # Written blocks get the minimum lease (so TCS store stalls and TCW
    # fence GWCTs stay small); blocks whose copies expire without having
    # been written since grow their lease. The *physical* scale of these
    # leases must straddle real reuse distances — the structural weakness
    # that RCC's logical, self-scaling leases remove.
    # ------------------------------------------------------------------
    def _lease_for(self, line: CacheLine) -> int:
        if not self.tc_cfg.predictor_enabled:
            return self.tc_cfg.lease_default
        return line.meta.get("tc_lease", self.tc_cfg.lease_default)

    def _predict_on_write(self, line: CacheLine, waited: int) -> None:
        line.meta["written_since_grant"] = True
        if self.tc_cfg.predictor_enabled:
            line.meta["tc_lease"] = self.tc_cfg.lease_min

    def _predict_on_grant(self, line: CacheLine, was_expired: bool) -> None:
        if not self.tc_cfg.predictor_enabled:
            return
        if was_expired and not line.meta.get("written_since_grant", False):
            # The copy expired but nobody wrote it: lifetime too short.
            line.meta["tc_lease"] = min(self.tc_cfg.lease_max,
                                        self._lease_for(line) * 4)
        line.meta["written_since_grant"] = False

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if msg.kind is MsgKind.GETS:
            self._on_gets(msg)
        elif msg.kind in (MsgKind.WRITE, MsgKind.ATOMIC):
            self._on_write(msg, atomic=msg.kind is MsgKind.ATOMIC)
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            self.stats.gets += 1
        block = msg.addr
        line = self.cache._map.get(block)

        if line is not None and line.state is L2State.V:
            now = self.engine.now
            self.stats.hits += 1
            lease = self._lease_for(line)
            self._predict_on_grant(line, msg.meta.get("expired", False))
            new_exp = max(line.exp, now + lease)
            pending = line.meta.get("pending_acks")
            if self.strong and pending:
                # Stores are already waiting for the current leases to
                # expire: keep serving reads (with the *old* value — a
                # pending write applies at its ack time), but cap the new
                # lease below the EARLIEST pending store's serialization
                # point. Capping at the latest (the old store_busy_until)
                # let a lease granted between two buffered stores cover
                # cycles past the first store's apply time, so an L1 hit
                # could return the pre-store value after that store had
                # serialized — a write-atomicity hole.
                new_exp = min(new_exp, min(pending) - 1)
            line.exp = max(line.exp, new_exp)
            line.touch()
            if self.sanitizer is not None:
                self._emit(EV.L2_READ_GRANT, block, exp=line.exp, now=now,
                           peer=msg.src[1])
            self.send(msg.src, MsgKind.DATA, block, exp=line.exp,
                      value=line.value,
                      meta={"arrival": self.next_arrival(),
                            "granted_at": now},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if line is not None and line.state is L2State.IV:
            entry = self.mshr.allocate(block)
            entry.has_read = True
            entry.waiting_loads.append(msg)
            return
        self._miss_fetch(msg, block, is_read=True)

    def _on_write(self, msg: Message, atomic: bool) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            if atomic:
                self.stats.atomics += 1
            else:
                self.stats.writes += 1
        block = msg.addr
        line = self.cache._map.get(block)

        if line is not None and line.state is L2State.V:
            now = self.engine.now
            self.stats.hits += 1
            hit_lat = self.cfg.l2_per_bank.hit_latency
            self._predict_on_write(line, max(0, line.exp - now))
            if self.strong:
                # TC-strong: the write *serializes* only once every
                # outstanding lease has expired. Buffer it; reads keep
                # being served the old value until then.
                busy = line.meta.get("store_busy_until", 0)
                ack_at = max(now + hit_lat, post_lease(line.exp), busy + 1)
                line.meta["store_busy_until"] = ack_at
                line.meta.setdefault("pending_acks", []).append(ack_at)
                line.pinned = True  # not evictable with a buffered store
                self.stats.store_lease_wait_cycles += ack_at - (now + hit_lat)
                if self.sanitizer is not None:
                    self._emit(EV.L2_WRITE_BUFFER, block, ack_at=ack_at,
                               exp=line.exp, now=now, atomic=atomic)
                self.engine.schedule_call(
                    ack_at, lambda: self._apply_strong(msg, block, atomic,
                                                       ack_at))
                return
            # TC-weak: apply and ack immediately; pass back the GWCT (when
            # all current leases expire) for the core's fence bookkeeping.
            old_value = line.value
            line.value = msg.value
            line.dirty = True
            line.touch()
            arrival = self.next_arrival()
            gwct = max(now, line.exp)
            if self.sanitizer is not None:
                self._emit(EV.L2_ATOMIC_APPLY if atomic else
                           EV.L2_WRITE_APPLY, block, completed_at=now,
                           exp=line.exp, gwct=gwct, arrival=arrival)
            meta = {"record": msg.meta.get("record"),
                    "warp": msg.meta.get("warp"),
                    "arrival": arrival,
                    "completed_at": now,
                    "gwct": gwct}
            if atomic:
                meta["atomic"] = True
                self.send(msg.src, MsgKind.DATA, block, value=old_value,
                          meta=meta, delay=hit_lat)
            else:
                self.send(msg.src, MsgKind.ACK, block, meta=meta,
                          delay=hit_lat)
            return
        if line is not None and line.state is L2State.IV:
            entry = self.mshr.allocate(block)
            entry.pending_stores.append(msg)
            return
        self._miss_fetch(msg, block, is_read=False)

    def _apply_strong(self, msg: Message, block: int, atomic: bool,
                      ack_at: int) -> None:
        """TC-strong deferred write application (all leases have expired)."""
        line = self.cache._map.get(block)
        if line is None:
            raise self.unhandled("V", "apply", f"buffered store lost 0x{block:x}")
        old_value = line.value
        line.value = msg.value
        line.dirty = True
        line.touch()
        pending = line.meta.get("pending_acks", [])
        if ack_at in pending:
            pending.remove(ack_at)
        if not pending and line.state is L2State.V:
            line.pinned = False
        arrival = self.next_arrival()
        if self.sanitizer is not None:
            self._emit(EV.L2_ATOMIC_APPLY if atomic else EV.L2_WRITE_APPLY,
                       block, completed_at=ack_at, exp=line.exp,
                       arrival=arrival)
        meta = {"record": msg.meta.get("record"),
                "warp": msg.meta.get("warp"),
                "arrival": arrival,
                "completed_at": ack_at}
        if atomic:
            meta["atomic"] = True
            self.send(msg.src, MsgKind.DATA, block, value=old_value, meta=meta)
        else:
            self.send(msg.src, MsgKind.ACK, block, meta=meta)

    # ------------------------------------------------------------------
    def _miss_fetch(self, msg: Message, block: int, is_read: bool) -> None:
        # Under MSHR pressure this is re-entered once per RETRY_DELAY per
        # parked request — millions of times in lease-heavy sweeps — so the
        # fail path is inlined: the occupancy test reads the MSHR's entry
        # dict directly and the retry uses the pooled no-handle scheduling
        # path (order-identical to ``schedule``, see ``_retry``).
        mshr = self.mshr
        entries = mshr._entries
        if ((len(entries) + len(self.parked) >= mshr.capacity
             and block not in entries)
                or not self._can_allocate(block)):
            # The retry callback is built once per message and cached in
            # its meta. While the bank is still saturated it requeues
            # itself directly: the guard below is exactly this method's
            # short-circuit fail condition, and with no line present the
            # full handler could do nothing else (``_on_gets``/``_on_write``
            # fall straight back here, and ``_can_allocate`` — whose
            # pin-flag side effects must be preserved — is skipped by the
            # ``or`` short-circuit either way). Any other state falls
            # through to the kind-specific handler, which is identical to
            # re-entering ``on_message`` (pure dispatch). Never cancelled
            # -> the engine's no-handle path, which preserves (cycle, seq)
            # firing order exactly.
            meta = msg.meta
            cb = meta.get("_retry_cb")
            if cb is None:
                cache_map = self.cache._map
                parked = self.parked
                capacity = mshr.capacity
                engine = self.engine
                # The self-requeue inlines ``schedule_call``'s in-window
                # bare-callback path (sans the past-check: now+RETRY_DELAY
                # is always in the future) — at millions of polls per sweep
                # the method call itself is measurable. ``_ring`` is never
                # rebound; ``_ring_cycles`` can be (``_park``), so it is
                # read through the engine each time.
                ring = getattr(engine, "_ring", None)  # None under the legacy engine
                if is_read:
                    def cb() -> None:
                        if (cache_map.get(block) is None
                                and len(entries) + len(parked) >= capacity
                                and block not in entries):
                            cyc = engine.now + RETRY_DELAY
                            if ring is not None and cyc < engine._horizon:
                                engine._live += 1
                                b = ring[cyc & _RING_MASK]
                                if not b:
                                    heappush(engine._ring_cycles, cyc)
                                b.append(cb)
                            else:
                                engine.schedule_call(cyc, cb)
                        else:
                            self._on_gets(msg)
                else:
                    atomic = msg.kind is MsgKind.ATOMIC

                    def cb() -> None:
                        if (cache_map.get(block) is None
                                and len(entries) + len(parked) >= capacity
                                and block not in entries):
                            cyc = engine.now + RETRY_DELAY
                            if ring is not None and cyc < engine._horizon:
                                engine._live += 1
                                b = ring[cyc & _RING_MASK]
                                if not b:
                                    heappush(engine._ring_cycles, cyc)
                                b.append(cb)
                            else:
                                engine.schedule_call(cyc, cb)
                        else:
                            self._on_write(msg, atomic)
                meta["_retry_cb"] = cb
            engine = self.engine
            engine.schedule_call(engine.now + RETRY_DELAY, cb)
            return
        self.stats.misses += 1
        line = self.cache.insert(block, L2State.IV, self._on_evict)
        line.pinned = True
        entry = self.mshr.allocate(block)
        if is_read:
            entry.has_read = True
            entry.waiting_loads.append(msg)
        else:
            entry.pending_stores.append(msg)
        self.fetch_from_dram(block, self._on_dram_data)

    def _can_allocate(self, block: int) -> bool:
        """Evicting an unexpired block parks its lease in an MSHR slot
        (Singh et al.); eviction is only refused when a buffered TCS store
        is pending on the victim or no MSHR slot is free to park into."""
        now = self.engine.now
        slot_free = self._mshr_slots_free()
        for line in self.cache.set_lines(block):
            if line.addr == block:
                return True
            if line.state is not L2State.V:
                continue
            if line.meta.get("pending_acks"):
                line.pinned = True
            elif line.exp > now and not slot_free:
                line.pinned = True  # nowhere to park the live lease
            else:
                line.pinned = False
        return self.cache.can_allocate(block)

    def _mshr_slots_free(self) -> bool:
        """Parked leases occupy MSHR capacity alongside real misses."""
        return len(self.mshr._entries) + len(self.parked) < self.mshr.capacity

    def _on_dram_data(self, block: int) -> None:
        line = self.cache._map.get(block)
        entry = self.mshr.get(block)
        if line is None or entry is None:
            raise self.unhandled("I", "MEMDATA", f"orphan fill 0x{block:x}")
        line.state = L2State.V
        line.pinned = False
        line.value = self.read_backing(block)
        # A parked lease survives the round trip through DRAM: a write to
        # the refetched block must still wait for it (TCS correctness).
        line.exp = self.parked.pop(block, 0)
        if self.sanitizer is not None:
            self._emit(EV.L2_FILL, block, exp=line.exp)
        # Replay merged requests in arrival order: reads then writes (the
        # interleaving error is bounded by the fill latency).
        reads, entry.waiting_loads = entry.waiting_loads, []
        writes, entry.pending_stores = entry.pending_stores, []
        entry.has_read = entry.has_write = False
        self.mshr.release_if_empty(block)
        for req in reads:
            self.on_message(req)
        for req in writes:
            self.on_message(req)

    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        now = self.engine.now
        if self.sanitizer is not None:
            self._emit(EV.L2_EVICT, line.addr, exp=line.exp,
                       parked=line.exp > now)
        if line.exp > now:
            # Park the live lease so a later write still waits it out.
            exp = line.exp
            self.parked[line.addr] = max(self.parked.get(line.addr, 0), exp)
            self.engine.schedule_call(post_lease(exp),
                                      lambda: self._unpark(line.addr, exp))
        if line.dirty:
            self.writeback_to_dram(line.addr, line.value)

    def _unpark(self, addr: int, exp: int) -> None:
        if self.parked.get(addr, -1) <= exp:
            self.parked.pop(addr, None)
