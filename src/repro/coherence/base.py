"""Shared machinery for L1/L2 coherence controllers.

Every protocol implements two controller classes:

* an **L1 controller** per SM — owns the core-side tag array and MSHRs,
  receives memory ops from the core's issue stage, and exchanges messages
  with L2 banks over the crossbar;
* an **L2 controller** per bank — owns one bank of the shared write-back L2,
  its MSHRs, and the attached DRAM partition.

The base classes centralize message plumbing, hit-completion scheduling,
MSHR bookkeeping, and statistics; subclasses implement the protocol FSMs.
All L1s are write-through / write-no-allocate and all L2s are write-back,
matching commercial GPUs and the paper's setup.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.addresses import AddressMap
from repro.common.messages import Message
from repro.common.types import AccessOutcome, MemOpKind, MsgKind
from repro.config import GPUConfig
from repro.errors import ProtocolError
from repro.gpu.warp import MemOpRecord, Warp
from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.dram import DRAMPartition
from repro.mem.mshr import MSHRFile
from repro.noc.crossbar import Crossbar
from repro.timing.engine import Engine


def _install_counter_properties(cls: type) -> type:
    """Expose each ``FIELDS`` name as a property over the backing list.

    The counters live in one ``List[int]`` (``self.c``) so the compilable
    flat kernel (:mod:`repro.kernel.hot`) can bump them by integer index
    without attribute access; every existing ``stats.loads += 1`` call
    site keeps working through these properties."""
    for i, field in enumerate(cls.FIELDS):
        def getter(self, _i: int = i) -> int:
            return self.c[_i]

        def setter(self, value: int, _i: int = i) -> None:
            self.c[_i] = value

        setattr(cls, field, property(getter, setter))
    return cls


@_install_counter_properties
class L1Stats:
    """Superset of per-L1 counters used across protocols.

    ``load_expired``: loads that found the block in V state but with an
    expired lease (RCC/TC) — the numerator of the paper's Fig. 6 (left).
    Field order is part of the flat-kernel ABI (``hot.ST1_*`` indices are
    pinned against ``FIELDS`` by the kernel test battery)."""

    FIELDS = ("loads", "load_hits", "load_misses", "load_expired", "stores",
              "atomics", "renews_received", "invalidations_received",
              "self_invalidations", "evictions", "flushes")

    __slots__ = ("c",)

    def __init__(self) -> None:
        self.c = [0] * len(self.FIELDS)


@_install_counter_properties
class L2Stats:
    """Per-L2-bank counters.

    ``gets_expired``: GETS requests from expired L1 copies (Fig. 6 right
    denominator); ``renew_grants``: ... of which the block was unchanged
    and a RENEW was granted; ``store_lease_wait_cycles``: TCS only, cycles
    stores spent waiting for leases to expire. Field order is part of the
    flat-kernel ABI (see :class:`L1Stats`)."""

    FIELDS = ("gets", "writes", "atomics", "hits", "misses", "evictions",
              "writebacks", "gets_expired", "renew_grants",
              "invalidations_sent", "store_lease_wait_cycles", "rollovers")

    __slots__ = ("c",)

    def __init__(self) -> None:
        self.c = [0] * len(self.FIELDS)


class L1ControllerBase:
    """Common L1 plumbing; subclasses implement ``access``/``on_message``."""

    def __init__(self, core_id: int, engine: Engine, cfg: GPUConfig,
                 noc: Crossbar, amap: AddressMap, invalid_state: Any):
        self.core_id = core_id
        self.engine = engine
        self.cfg = cfg
        self.noc = noc
        self.amap = amap
        self.endpoint = ("core", core_id)
        self.cache = CacheArray(cfg.l1, invalid_state)
        self.mshr = MSHRFile(cfg.l1.mshr_entries)
        self.stats = L1Stats()
        self.core = None  # GPUCore, attached by the simulator
        #: Runtime invariant checker; None (the default) costs one attribute
        #: test per emission site and nothing else.
        self.sanitizer = None
        noc.register(self.endpoint, self.on_message)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_core(self, core) -> None:
        self.core = core
        core.attach_l1(self)

    # ------------------------------------------------------------------
    # Protocol interface (abstract)
    # ------------------------------------------------------------------
    def access(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        raise NotImplementedError

    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        """Side-effect-free probe of ``access``'s STALL exits.

        The core consults this before building the (surprisingly expensive)
        :class:`MemOpRecord` for an attempt that would only bounce off a
        full MSHR. Contract: True must imply that ``access`` would return
        STALL right now; False may be wrong (the core still handles a STALL
        from ``access`` itself), so overrides can be conservative — but
        never optimistic.
        """
        return False

    def on_message(self, msg: Message) -> None:
        raise NotImplementedError

    def fence_block_until(self, warp: Warp) -> int:
        """Earliest cycle the warp's pending fence may retire (given its
        outstanding accesses have drained). Default: no extra wait."""
        return self.engine.now

    def on_fence_retire(self, warp: Warp) -> None:
        """Hook invoked by the core when a fence retires (RCC-WO joins its
        read/write logical views here). Default: nothing."""

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        shift = self.amap._block_shift
        return (addr >> shift) << shift

    def l2_endpoint(self, addr: int) -> Tuple[str, int]:
        return ("l2", self.amap.bank_of(addr))

    def send_to_l2(self, kind: MsgKind, addr: int, *, now: Optional[int] = None,
                   exp: Optional[int] = None, value: Any = None,
                   meta: Optional[Dict[str, Any]] = None,
                   warp_ref: Any = None) -> Message:
        msg = Message(kind=kind, addr=self.block_of(addr), src=self.endpoint,
                      dst=self.l2_endpoint(addr), now=now, exp=exp,
                      value=value, warp_ref=warp_ref, meta=meta or {})
        self.noc.send(msg)
        return msg

    def complete(self, record: MemOpRecord, warp: Warp, delay: int = 0) -> None:
        """Hand a finished memory op back to the core after ``delay``.

        Zero-additional-latency completions (same-cycle L1 hits) take the
        inline path and never touch the event queue; delayed ones use the
        engine's pooled no-handle fast path (completions are never
        cancelled)."""
        if delay <= 0:
            self.core.mem_op_done(record, warp)
        else:
            engine = self.engine
            engine.schedule_call(
                engine.now + delay,
                lambda: self.core.mem_op_done(record, warp))

    def count_access(self, record: MemOpRecord) -> None:
        if record.kind is MemOpKind.LOAD:
            self.stats.loads += 1
        elif record.kind is MemOpKind.STORE:
            self.stats.stores += 1
        elif record.kind is MemOpKind.ATOMIC:
            self.stats.atomics += 1

    def _emit(self, kind: str, addr: int, **fields: Any) -> None:
        """Forward one protocol step to the attached sanitizer. Call sites
        guard with ``if self.sanitizer is not None`` so the disabled path
        never builds the kwargs dict."""
        self.sanitizer.emit(kind, "L1", self.core_id, self.engine.now,
                            addr, **fields)

    def unhandled(self, state: Any, event: Any, detail: str = "") -> ProtocolError:
        return ProtocolError(f"L1[{self.core_id}]", str(state), str(event), detail)


class L2ControllerBase:
    """Common L2-bank plumbing; subclasses implement ``on_message``."""

    def __init__(self, bank_id: int, engine: Engine, cfg: GPUConfig,
                 noc: Crossbar, amap: AddressMap, dram: DRAMPartition,
                 backing: Dict[int, Any], invalid_state: Any):
        self.bank_id = bank_id
        self.engine = engine
        self.cfg = cfg
        self.noc = noc
        self.amap = amap
        self.dram = dram
        #: Architectural memory contents (block -> data token); timing is
        #: modelled by :class:`DRAMPartition`, values live here.
        self.backing = backing
        self.endpoint = ("l2", bank_id)
        self.cache = CacheArray(cfg.l2_per_bank, invalid_state)
        self.mshr = MSHRFile(cfg.l2_per_bank.mshr_entries)
        self.stats = L2Stats()
        #: Monotonic per-bank arrival counter: the physical serialization
        #: order of writes at this bank (SC tie-break for equal versions).
        self._arrivals = 0
        #: Runtime invariant checker (see L1ControllerBase.sanitizer).
        self.sanitizer = None
        noc.register(self.endpoint, self.on_message)

    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def next_arrival(self) -> int:
        self._arrivals += 1
        return self._arrivals

    def send(self, dst: Any, kind: MsgKind, addr: int, *,
             now: Optional[int] = None, exp: Optional[int] = None,
             ver: Optional[int] = None, value: Any = None,
             meta: Optional[Dict[str, Any]] = None,
             warp_ref: Any = None, delay: int = 0) -> Message:
        msg = Message(kind=kind, addr=addr, src=self.endpoint, dst=dst,
                      now=now, exp=exp, ver=ver, value=value,
                      warp_ref=warp_ref, meta=meta or {})
        if delay <= 0:
            self.noc.send(msg)
        else:
            self.engine.schedule_call(self.engine.now + delay,
                                      lambda: self.noc.send(msg))
        return msg

    def read_backing(self, addr: int) -> Any:
        """Architectural memory value (blocks start as ("init", addr))."""
        return self.backing.get(addr, ("init", addr))

    def fetch_from_dram(self, addr: int, then: Callable[[int], None]) -> None:
        """Timing-only DRAM read; ``then(addr)`` fires when data arrives."""
        self.dram.access(addr, is_write=False, token=addr,
                         done=lambda a: then(a))

    def writeback_to_dram(self, addr: int, value: Any) -> None:
        """Write-back: update architectural memory, account DRAM timing."""
        self.backing[addr] = value
        self.stats.writebacks += 1
        self.dram.access(addr, is_write=True, token=addr, done=lambda a: None)

    def _emit(self, kind: str, addr: int, **fields: Any) -> None:
        """Forward one protocol step to the attached sanitizer (see
        L1ControllerBase._emit)."""
        self.sanitizer.emit(kind, "L2", self.bank_id, self.engine.now,
                            addr, **fields)

    def unhandled(self, state: Any, event: Any, detail: str = "") -> ProtocolError:
        return ProtocolError(f"L2[{self.bank_id}]", str(state), str(event), detail)
