"""Coherence protocols: shared controller scaffolding and the baselines
(MESI, TC-strong, TC-weak, SC-ideal). The paper's contribution, RCC, lives
in :mod:`repro.core`."""

from repro.coherence.base import L1ControllerBase, L2ControllerBase, L1Stats, L2Stats

__all__ = ["L1ControllerBase", "L2ControllerBase", "L1Stats", "L2Stats"]
