"""The original single-heap discrete-event engine, kept as a reference.

This is the engine the repository shipped with before the bucketed
fast-path engine replaced it in :mod:`repro.timing.engine`. It is retained
verbatim (plus a :meth:`LegacyEngine.schedule_call` compatibility shim) for
two reasons:

* the differential battery in ``tests/test_engine_differential.py`` replays
  randomized schedule/cancel/run sequences — and whole Fig. 9 cells —
  against it to prove the new engine preserves the exact ``(cycle, seq)``
  firing order and therefore bit-identical statistics;
* ``repro-perf --compare-legacy`` and ``RCC_LEGACY_ENGINE=1`` let anyone
  re-measure the speedup or fall back to the slow-but-simple engine when
  debugging the fast one.

Do not optimize this file; its value is being the unoptimized oracle.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError

Callback = Callable[[], None]


class LegacyEvent:
    """Handle for a scheduled event; lets the scheduler cancel it."""

    __slots__ = ("cycle", "seq", "callback", "cancelled")

    def __init__(self, cycle: int, seq: int, callback: Callback):
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap, skipped)."""
        self.cancelled = True

    def __lt__(self, other: "LegacyEvent") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{flag}>"


class LegacyEngine:
    """A deterministic discrete-event simulator clock (single global heap).

    >>> eng = LegacyEngine()
    >>> fired = []
    >>> _ = eng.schedule(5, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5]
    """

    def __init__(self, max_cycles: int = 500_000_000):
        self.now: int = 0
        self.max_cycles = max_cycles
        self._heap: List[LegacyEvent] = []
        self._seq = 0
        self._events_fired = 0
        self._stopped = False
        #: Optional () -> str hook appended to DeadlockError messages
        #: (the sanitizer attaches its recent-event tail here).
        self.diagnostics: Optional[Callable[[], str]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, callback: Callback) -> LegacyEvent:
        """Schedule ``callback`` to fire at absolute ``cycle``."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self.now}, at={cycle})"
            )
        self._seq += 1
        ev = LegacyEvent(cycle, self._seq, callback)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: int, callback: Callback) -> LegacyEvent:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback)

    def schedule_call(self, cycle: int, callback: Callback) -> None:
        """Compatibility with the fast engine's no-handle scheduling path.

        The legacy heap has no event pool, so this is plain ``schedule``
        with the handle dropped — the shared call sites behave identically
        on both engines, which is what the differential tests rely on.
        """
        self.schedule(cycle, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def step(self) -> bool:
        """Fire the next pending event. Returns False when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.cycle > self.max_cycles:
                detail = (f"event horizon exceeded max_cycles="
                          f"{self.max_cycles}; likely livelock or runaway "
                          "simulation")
                if self.diagnostics is not None:
                    detail += "\n" + self.diagnostics()
                raise DeadlockError(self.now, detail)
            self.now = ev.cycle
            ev.callback()
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run until the event queue drains, ``stop()``, or cycle ``until``."""
        self._stopped = False
        while not self._stopped:
            if until is not None and self.peek() is not None and self.peek() > until:
                self.now = until
                return
            if not self.step():
                return

    def peek(self) -> Optional[int]:
        """Cycle of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].cycle if self._heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def snapshot(self) -> Tuple[int, int, int]:
        """(now, events_fired, pending) — used by progress watchdogs."""
        return (self.now, self._events_fired, self.pending)
