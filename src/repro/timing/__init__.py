"""Discrete-event simulation engine used by every timed component.

:class:`Engine` is the bucketed fast-path engine; the original single-heap
implementation survives as :class:`LegacyEngine` for differential testing
and for the ``RCC_LEGACY_ENGINE=1`` escape hatch (see :func:`make_engine`).
"""

import os

from repro.timing.engine import Engine, Event
from repro.timing.legacy import LegacyEngine, LegacyEvent


def make_engine(max_cycles: int = 500_000_000):
    """The engine the simulator should use.

    Honors ``RCC_LEGACY_ENGINE=1`` in the environment, which swaps the
    original single-heap engine back in — useful for debugging the fast
    engine and for measuring the speedup (``repro-perf --compare-legacy``).
    Both engines implement the same interface and the same deterministic
    ``(cycle, seq)`` firing order, so results are bit-identical either way.
    """
    if os.environ.get("RCC_LEGACY_ENGINE"):
        return LegacyEngine(max_cycles=max_cycles)
    return Engine(max_cycles=max_cycles)


__all__ = ["Engine", "Event", "LegacyEngine", "LegacyEvent", "make_engine"]
