"""Discrete-event simulation engine used by every timed component."""

from repro.timing.engine import Engine, Event

__all__ = ["Engine", "Event"]
