"""Cycle-accurate discrete-event simulation engine (bucketed fast path).

The engine's contract is unchanged from the original single-heap version:
events fire in ``(cycle, seq)`` order, where ``seq`` is the global
scheduling order, so events scheduled for the same cycle fire in
scheduling order and every simulation is fully deterministic — two runs
with the same configuration and workload produce bit-identical statistics.
``tests/test_engine_differential.py`` checks this equivalence against the
original engine (kept as :class:`repro.timing.legacy.LegacyEngine`).

What changed is the data structure behind that contract. Profiles of the
Fig. 9 sweep showed most events land within a few hundred cycles of ``now``
(core ticks at ``now+1``, L1 hits at ``now+hit_latency``, NoC deliveries
tens of cycles out, DRAM returns ~460 cycles out), so a global binary heap
pays an O(log n) comparison cascade per event for keys that are almost
always near the minimum. Instead we keep a **two-level queue**:

* a rotating array of ``_RING`` (512, a power of two ≥ the DRAM minimum
  latency) near-future cycle buckets covering ``[now, horizon)``; an event
  at cycle ``c`` is appended to bucket ``c & (_RING - 1)`` — O(1), and
  because ``seq`` is monotonic each bucket list is seq-sorted by
  construction;
* a far-future heap for the rare events at or beyond the horizon (livelock
  watchdogs, timeseries samplers); when the queue advances, far events that
  fall inside the new window are migrated into their buckets **before** any
  callback at the new cycle runs, which keeps bucket order = seq order;
* a min-heap of *occupied bucket cycles* (pushed only on a bucket's
  empty→nonempty transition, so ~1 push per simulated cycle rather than
  per event) that makes "what is the next nonempty cycle?" O(log #cycles)
  even when the ring is sparse.

Same-cycle events are drained as a batch: the run loop acquires a bucket
once and walks it by index, picking up events appended to the current cycle
mid-drain without touching any priority structure. Two further fast paths:

* :meth:`Engine.schedule_call` is a no-handle variant of ``schedule`` for
  the hot call sites (core ticks, NoC deliveries, DRAM completions, L1 hit
  callbacks, protocol retries) whose events are never cancelled. Inside
  the ring window it appends the **bare callback** to the bucket — no
  event object, no seq draw (bucket position already encodes scheduling
  order); beyond the window it wraps the callback in an ``Event`` recycled
  through a free list. Because no handle escapes, neither representation
  can be confused by a stale ``cancel()``.
* ``pending`` is an O(1) live-event counter (decremented on cancel and on
  fire) instead of an O(n) heap walk, so watchdog ``snapshot()`` calls are
  free.

Components never spin on cycles they have nothing to do in; each schedules
the next event it cares about. GPU cores register their per-cycle issue
stage in the engine's cycle bucket itself (see ``GPUCore._schedule_tick``),
which makes the bucket the shared per-cycle dispatch list for all cores
active in that cycle.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.kernel import hot as _hot

Callback = Callable[[], None]

#: Width of the near-future window, in cycles. Must be a power of two and
#: should exceed the largest common scheduling distance (DRAM min_latency,
#: 460 cycles in the paper config) so that steady-state traffic never
#: touches the far heap.
_RING = 512
_MASK = _RING - 1

#: Free-list bound; beyond this, retired pooled events are dropped for the
#: allocator to reclaim.
_POOL_MAX = 4096


class Event:
    """Handle for a scheduled event; lets the scheduler cancel it."""

    __slots__ = ("cycle", "seq", "callback", "cancelled", "_engine",
                 "_pooled")

    def __init__(self, cycle: int, seq: int, callback: Callback):
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._engine = None
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays queued, skipped)."""
        if not self.cancelled:
            self.cancelled = True
            eng = self._engine
            if eng is not None:
                eng._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{flag}>"


class Engine:
    """A deterministic discrete-event simulator clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5]
    """

    __slots__ = ("now", "max_cycles", "_seq", "_events_fired", "_stopped",
                 "_live", "_ring", "_ring_cycles", "_far", "_horizon",
                 "_cur", "_cur_idx", "_cur_cycle", "_pool", "_drain_ctl",
                 "_ring_has_ev", "diagnostics")

    def __init__(self, max_cycles: int = 500_000_000):
        self.now: int = 0
        self.max_cycles = max_cycles
        self._seq = 0
        self._events_fired = 0
        self._stopped = False
        #: Live (scheduled, not yet fired, not cancelled) events — O(1)
        #: ``pending``.
        self._live = 0
        #: Near-future buckets; bucket ``c & _MASK`` holds cycle ``c`` while
        #: ``c`` is inside ``[now, _horizon)``.
        self._ring: List[List[Event]] = [[] for _ in range(_RING)]
        #: Min-heap of cycles whose bucket is occupied (one entry per
        #: occupied cycle; pushed on the empty→nonempty transition).
        self._ring_cycles: List[int] = []
        #: Events at ``cycle >= _horizon``.
        self._far: List[Event] = []
        #: Exclusive upper bound of the ring window. Invariant: every event
        #: in a bucket has ``cycle < _horizon`` and every far-heap event has
        #: ``cycle >= horizon-at-push`` (monotonic), so the earliest ring
        #: cycle is always below the earliest far cycle.
        self._horizon = _RING
        # Batch-drain cursor over the bucket of the cycle being fired.
        # Events appended to the current cycle mid-drain extend the list and
        # are picked up by index; the list is recycled when the cycle ends.
        self._cur: Optional[List[Event]] = None
        self._cur_idx = 0
        self._cur_cycle = -1
        #: Free list of recycled schedule_call events.
        self._pool: List[Event] = []
        #: Drain-control box shared with :func:`repro.kernel.hot.drain_calls`:
        #: [stop requested, resume index, Event appended to the current
        #: bucket mid-drain, fired count]. A plain int list so the compiled
        #: kernel can read/write it without attribute access.
        self._drain_ctl: List[int] = [0, 0, 0, 0]
        #: Per-bucket "may hold :class:`Event` objects" flags. False means
        #: the bucket holds only bare ``schedule_call`` callbacks and
        #: ``None`` holes — the shape the batch drain kernel accepts.
        #: Conservative: set on every Event append, cleared only when the
        #: bucket's cycle retires or the bucket is evicted.
        self._ring_has_ev: List[bool] = [False] * _RING
        #: Optional () -> str hook appended to DeadlockError messages
        #: (the sanitizer attaches its recent-event tail here).
        self.diagnostics: Optional[Callable[[], str]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire at absolute ``cycle``."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self.now}, at={cycle})"
            )
        self._seq += 1
        ev = Event(cycle, self._seq, callback)
        ev._engine = self
        self._live += 1
        if cycle < self._horizon:
            bucket = self._ring[cycle & _MASK]
            if not bucket:
                heapq.heappush(self._ring_cycles, cycle)
            bucket.append(ev)
            self._ring_has_ev[cycle & _MASK] = True
            if cycle == self._cur_cycle:
                # A handle-carrying event landed in the bucket being
                # drained: kick the batch drain back to the Python loop,
                # which knows how to fire Events.
                self._drain_ctl[2] = 1
        else:
            heapq.heappush(self._far, ev)
        return ev

    def schedule_in(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback)

    def schedule_call(self, cycle: int, callback: Callback) -> None:
        """Fire-and-forget scheduling for hot paths; returns no handle.

        Events created here cannot be cancelled (nothing holds a reference
        to them), which permits a representation trick: inside the ring
        window the **bare callback** is appended to the bucket — no event
        object at all. A bucket list is position-ordered (= scheduling
        order = seq order; far-heap migration happens before any same-cycle
        append, see ``_acquire_next_cycle``), so within a bucket the seq
        counter is redundant and is not consumed. Ordering relative to
        ``schedule()`` events is still exact: handle events in the same
        bucket sit at their scheduling position, and cross-cycle order
        never consults seq. Only the far-heap path (beyond the window)
        needs an ordering key and wraps the callback in a pooled
        :class:`Event`.
        """
        if cycle < self._horizon:
            if cycle < self.now:
                raise SimulationError(
                    f"cannot schedule event in the past "
                    f"(now={self.now}, at={cycle})"
                )
            self._live += 1
            bucket = self._ring[cycle & _MASK]
            if not bucket:
                heapq.heappush(self._ring_cycles, cycle)
            bucket.append(callback)
            return
        self._seq += 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.cycle = cycle
            ev.seq = self._seq
            ev.callback = callback
        else:
            ev = Event(cycle, self._seq, callback)
            ev._pooled = True
        self._live += 1
        heapq.heappush(self._far, ev)

    # ------------------------------------------------------------------
    # Queue internals
    # ------------------------------------------------------------------
    def _retire_bucket(self) -> None:
        """Drop the drained cursor bucket (its cycle is now in the past)."""
        del self._cur[:]
        self._cur = None
        self._ring_has_ev[self._cur_cycle & _MASK] = False

    def _acquire_next_cycle(self) -> bool:
        """Point the cursor at the earliest nonempty cycle, migrating far
        events into the window first. False when nothing is queued."""
        rc = self._ring_cycles
        far = self._far
        if rc:
            nxt = heapq.heappop(rc)
        else:
            while far and far[0].cancelled:
                heapq.heappop(far)
            if not far:
                return False
            nxt = far[0].cycle
        # Slide the window so it starts at the cycle about to fire, and
        # migrate far events that now fall inside it. Migration happens
        # before any callback at ``nxt`` runs and pops the far heap in
        # (cycle, seq) order, so every bucket list stays seq-sorted. The
        # horizon never shrinks here — after run(until=...) parks, stale
        # cancelled-only cycles below ``now`` may still be acquired, and
        # shrinking would strand already-bucketed events outside the
        # window (``_park`` is the only place the window contracts).
        horizon = nxt + _RING
        if horizon < self._horizon:
            horizon = self._horizon
        if far and far[0].cycle < horizon:
            ring = self._ring
            while far and far[0].cycle < horizon:
                ev = heapq.heappop(far)
                if ev.cancelled:
                    continue
                bucket = ring[ev.cycle & _MASK]
                if not bucket and ev.cycle != nxt:
                    heapq.heappush(rc, ev.cycle)
                bucket.append(ev)
                self._ring_has_ev[ev.cycle & _MASK] = True
        self._horizon = horizon
        self._cur = self._ring[nxt & _MASK]
        self._cur_idx = 0
        self._cur_cycle = nxt
        return True

    def _park(self, cyc: int, until: int) -> None:
        """Suspend a run at ``until`` with the next event cycle ``cyc``
        still in the future.

        The un-drained cycle is released back to the queue — a later
        ``schedule()`` may target an earlier cycle, which must fire first
        when the run resumes. (Fired slots in the released bucket are
        None/cancelled, so re-draining it from index 0 is safe.)

        Acquiring ``cyc`` may have slid the window far past ``until``; the
        window must contract back to ``[until, until + _RING)`` so that the
        one-cycle-per-bucket invariant holds for events scheduled while
        parked. Ring events beyond the contracted horizon are evicted back
        to the far heap (which restores far-cycle >= horizon > ring-cycle,
        the invariant the next-cycle selection relies on).
        """
        lst = self._cur
        self._cur = None
        horizon = until + _RING
        if self._horizon > horizon:
            keep: List[int] = []
            for c in self._ring_cycles:
                if c < horizon:
                    keep.append(c)
                else:
                    self._evict_bucket(c, self._ring[c & _MASK])
            heapq.heapify(keep)
            self._ring_cycles = keep
            if cyc < horizon:
                heapq.heappush(self._ring_cycles, cyc)
            else:
                self._evict_bucket(cyc, lst)
            self._horizon = horizon
        else:
            heapq.heappush(self._ring_cycles, cyc)
        self.now = until

    def _evict_bucket(self, cycle: int, bucket: List) -> None:
        """Move a bucket's live entries to the far heap (window contraction).

        Bucket entries are position-ordered; bare ``schedule_call``
        callbacks carry no ordering key, so every evicted entry is
        (re)stamped with a fresh ascending seq. That preserves the
        bucket's internal order, and cross-event order is safe because
        (a) a cycle never has entries in both the ring and the far heap,
        and (b) any event scheduled for this cycle *after* the eviction
        draws a still-higher seq.
        """
        far = self._far
        seq = self._seq
        for ev in bucket:
            if ev is None:
                continue
            if ev.__class__ is Event:
                if ev.cancelled:
                    continue
                seq += 1
                ev.seq = seq
            else:
                seq += 1
                wrapped = Event(cycle, seq, ev)
                wrapped._pooled = True
                ev = wrapped
            heapq.heappush(far, ev)
        self._seq = seq
        del bucket[:]
        self._ring_has_ev[cycle & _MASK] = False

    def _raise_horizon(self) -> None:
        detail = (f"event horizon exceeded max_cycles="
                  f"{self.max_cycles}; likely livelock or runaway "
                  "simulation")
        if self.diagnostics is not None:
            detail += "\n" + self.diagnostics()
        raise DeadlockError(self.now, detail)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True
        self._drain_ctl[0] = 1

    def step(self) -> bool:
        """Fire the next pending event. Returns False when none remain."""
        max_cycles = self.max_cycles
        while True:
            lst = self._cur
            if lst is None or self._cur_idx >= len(lst):
                if lst is not None:
                    self._retire_bucket()
                if not self._acquire_next_cycle():
                    return False
                lst = self._cur
            cyc = self._cur_cycle
            idx = self._cur_idx
            while idx < len(lst):
                ev = lst[idx]
                idx += 1
                if ev is None:
                    continue
                if ev.__class__ is Event:
                    if ev.cancelled:
                        continue
                    cb = ev.callback
                    if ev._pooled:
                        ev.callback = None
                        if len(self._pool) < _POOL_MAX:
                            self._pool.append(ev)
                    else:
                        # Flag fired events so a stale handle's cancel()
                        # cannot corrupt the live counter.
                        ev.cancelled = True
                else:
                    cb = ev  # bare schedule_call callback
                if cyc > max_cycles:
                    self._cur_idx = idx
                    self._raise_horizon()
                self._cur_idx = idx
                # Null the fired slot: a released-and-reacquired bucket
                # re-drains from index 0, and a live reference here could
                # by then be a reused event (or would re-fire a bare
                # callback).
                lst[idx - 1] = None
                self.now = cyc
                self._live -= 1
                self._events_fired += 1
                cb()
                return True
            self._cur_idx = idx

    def run(self, until: Optional[int] = None) -> None:
        """Run until the event queue drains, ``stop()``, or cycle ``until``."""
        self._stopped = False
        max_cycles = self.max_cycles
        pool = self._pool
        while not self._stopped:
            if self._live == 0:
                return
            lst = self._cur
            if lst is None or self._cur_idx >= len(lst):
                if lst is not None:
                    self._retire_bucket()
                if not self._acquire_next_cycle():
                    return
                lst = self._cur
            cyc = self._cur_cycle
            if until is not None and cyc > until:
                self._park(cyc, until)
                return
            over = cyc > max_cycles
            # ``now`` is a per-cycle fact, not a per-event one: set it once
            # per batch (every callback in it fires at this cycle).
            self.now = cyc
            # Batch-drain every event of this cycle, including events the
            # callbacks append to it; ``len(lst)`` is re-read on purpose.
            # The live/fired counters are reconciled once per batch (no
            # callback observes them mid-cycle; ``snapshot()`` is only
            # read between runs) and ``finally`` keeps them — and the
            # resume cursor — consistent on stop(), park, and errors.
            idx = self._cur_idx
            fired = 0
            try:
                if over:
                    # Past the horizon: the first live event raises. Skips
                    # (and event-pool handling) mirror the drain loop below
                    # so the cursor state on raise matches the historical
                    # per-event check exactly.
                    while idx < len(lst):
                        ev = lst[idx]
                        idx += 1
                        if ev is None:
                            continue
                        if ev.__class__ is Event:
                            if ev.cancelled:
                                continue
                            cb = ev.callback
                            if ev._pooled:
                                ev.callback = None
                                if len(pool) < _POOL_MAX:
                                    pool.append(ev)
                            else:
                                ev.cancelled = True
                        self._raise_horizon()
                else:
                    if not self._ring_has_ev[cyc & _MASK]:
                        # Steady-state cycles hold only bare schedule_call
                        # callbacks: hand the whole bucket to the compilable
                        # drain kernel. It returns on stop(), on a raise, or
                        # when a callback schedule()s an Event into this
                        # very bucket (ctl[2]); the Python loop below picks
                        # up from the reconciled cursor either way.
                        ctl = self._drain_ctl
                        ctl[0] = 0
                        ctl[1] = idx
                        ctl[2] = 0
                        ctl[3] = fired
                        try:
                            _hot.drain_calls(lst, ctl)
                        finally:
                            idx = ctl[1]
                            fired = ctl[3]
                        if self._stopped:
                            return
                    while idx < len(lst):
                        ev = lst[idx]
                        idx += 1
                        if ev is None:
                            continue
                        if ev.__class__ is Event:
                            if ev.cancelled:
                                continue
                            cb = ev.callback
                            if ev._pooled:
                                ev.callback = None
                                if len(pool) < _POOL_MAX:
                                    pool.append(ev)
                            else:
                                ev.cancelled = True
                        else:
                            cb = ev  # bare schedule_call callback
                        lst[idx - 1] = None
                        fired += 1
                        cb()
                        if self._stopped:
                            return
            finally:
                self._cur_idx = idx
                self._live -= fired
                self._events_fired += fired

    def peek(self) -> Optional[int]:
        """Cycle of the next live event, or None if the queue is empty."""
        if self._live == 0:
            return None
        lst = self._cur
        if lst is not None:
            for i in range(self._cur_idx, len(lst)):
                ev = lst[i]
                if ev is not None and (ev.__class__ is not Event
                                       or not ev.cancelled):
                    return self._cur_cycle
        for cycle in sorted(self._ring_cycles):
            for ev in self._ring[cycle & _MASK]:
                if ev is not None and (ev.__class__ is not Event
                                       or not ev.cancelled):
                    return cycle
        far = self._far
        while far and far[0].cancelled:
            heapq.heappop(far)
        return far[0].cycle if far else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1)."""
        return self._live

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def snapshot(self) -> Tuple[int, int, int]:
        """(now, events_fired, pending) — used by progress watchdogs."""
        return (self.now, self._events_fired, self.pending)
