"""Cycle-accurate discrete-event simulation engine.

The engine keeps a priority queue of ``(cycle, sequence, callback)`` events.
Events scheduled for the same cycle fire in scheduling order, which makes
every simulation fully deterministic: two runs with the same configuration
and workload produce bit-identical statistics.

Components never spin on cycles they have nothing to do in; each schedules
the next event it cares about. GPU cores schedule one event per active cycle
(they model an issue stage) but go idle when every warp is blocked, and are
woken by memory responses.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError

Callback = Callable[[], None]


class Event:
    """Handle for a scheduled event; lets the scheduler cancel it."""

    __slots__ = ("cycle", "seq", "callback", "cancelled")

    def __init__(self, cycle: int, seq: int, callback: Callback):
        self.cycle = cycle
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap, skipped)."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.cycle, self.seq) < (other.cycle, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event @{self.cycle} #{self.seq}{flag}>"


class Engine:
    """A deterministic discrete-event simulator clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [5]
    """

    def __init__(self, max_cycles: int = 500_000_000):
        self.now: int = 0
        self.max_cycles = max_cycles
        self._heap: List[Event] = []
        self._seq = 0
        self._events_fired = 0
        self._stopped = False
        #: Optional () -> str hook appended to DeadlockError messages
        #: (the sanitizer attaches its recent-event tail here).
        self.diagnostics: Optional[Callable[[], str]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire at absolute ``cycle``."""
        if cycle < self.now:
            raise SimulationError(
                f"cannot schedule event in the past (now={self.now}, at={cycle})"
            )
        self._seq += 1
        ev = Event(cycle, self._seq, callback)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(self, delay: int, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def step(self) -> bool:
        """Fire the next pending event. Returns False when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.cycle > self.max_cycles:
                detail = (f"event horizon exceeded max_cycles="
                          f"{self.max_cycles}; likely livelock or runaway "
                          "simulation")
                if self.diagnostics is not None:
                    detail += "\n" + self.diagnostics()
                raise DeadlockError(self.now, detail)
            self.now = ev.cycle
            ev.callback()
            self._events_fired += 1
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run until the event queue drains, ``stop()``, or cycle ``until``."""
        self._stopped = False
        while not self._stopped:
            if until is not None and self.peek() is not None and self.peek() > until:
                self.now = until
                return
            if not self.step():
                return

    def peek(self) -> Optional[int]:
        """Cycle of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].cycle if self._heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def snapshot(self) -> Tuple[int, int, int]:
        """(now, events_fired, pending) — used by progress watchdogs."""
        return (self.now, self._events_fired, self.pending)
