"""Compilable hot kernel: the full per-event L1/L2 protocol dispatch.

Everything in this module stays inside the compilable subset — integers,
booleans, lists, tuples, ``Dict[int, int]`` tag maps, plain dicts with
constant string keys (per-line policy state, MESI ``inv_pending``), and
*opaque* object slots that are only stored, moved, or ``len()``-ed — so
an ahead-of-time compiler (mypyc / Cython, see ``tools/build_kernel.py``)
can translate it to a C extension without boxing the arithmetic. The
pure-Python module is the always-available fallback; the two must stay
behaviorally identical (``tests/test_kernel_differential.py`` and the
golden battery pin payload bit-identity, ``tests/test_kernel_tables.py``
pins the encodings).

Handler protocol
----------------
Each flat controller prebuilds ONE context list (``repro.kernel.layout``
has the builders) holding its tag dict, tag-array columns, MSHR columns,
stats list, the shared LRU clock box, and flattened config ints. Hot
handlers take ``(ctx, ...scalars..., out)`` and perform the entire
per-event dispatch: table lookup, action selection, stat bumps, lease
grant/renew/expiry arithmetic, MSHR merge bookkeeping, and column
writes. They never raise — impossible protocol states return ``R_ERR``
and the wrapper re-raises through the canonical object path — and they
never build :class:`~repro.common.messages.Message` objects, emit
sanitizer events, or complete :class:`~repro.gpu.warp.MemOpRecord` ops;
those object-boundary steps stay in the thin wrapper, driven by the
``R_*`` result code and the integers left in ``out``.

Sequencing contract: hot code consumes LRU ticks from the shared clock
box at exactly the object kernel's draw points; bank ``arrival`` numbers
are drawn by the wrapper *after* the hot call (no arrival is consumed
between the oracle's draw point and the wrapper's, so values match).

State encodings
---------------
Codes are the **definition order** of the state enums in
:mod:`repro.common.types` (``FlatTagArray`` builds its encode/decode
maps the same way, so the hard-coded constants here and the generic
layout always agree — a unit test asserts it):

* L1: I=0, V=1, IV=2, II=3, VI=4; ``L1_NONE`` = no tag entry.
* L2: I=0, V=1, IV=2, IAV=3; ``L2_NONE`` = no tag entry.

Way occupancy lives in a dedicated ``c_used`` column (not a state-code
sentinel): freeing a way must leave every other column intact so that a
stale :class:`FlatLineView` held across a ``remove`` still reads the
departed line's fields, exactly like a stale ``CacheLine`` reference.

Transition tables
-----------------
One tuple per (controller, input event), indexed by state code, yielding
an action code. The tables encode exactly the state dispatch the object
controllers perform with chained ``is`` tests; the flat handlers branch
on the action. ``A_UNREACHED`` cells are states the protocols never
store in the tag array (e.g. L1 store transients live in the MSHR);
hitting one is a protocol bug.
"""

from typing import Any, Dict, List

# L1 state codes (L1State definition order) -----------------------------
L1_I = 0
L1_V = 1
L1_IV = 2
L1_II = 3
L1_VI = 4
L1_NONE = 5

# L2 state codes (L2State definition order) -----------------------------
L2_I = 0
L2_V = 1
L2_IV = 2
L2_IAV = 3
L2_NONE = 4

# Action codes ----------------------------------------------------------
A_UNREACHED = 0   # state never stored in the tag for this event
A_VHIT = 1        # L1 valid-line hit path (lease-checked under RCC)
A_MISS = 2        # L1 miss path (MSHR merge or allocate + GETS)
A_GRANT = 3       # L2 V: grant read (lease / sharer add)
A_MERGE_RD = 4    # L2 IV: merge reader into the MSHR
A_RETRY = 5       # L2 blocking state: requeue after RETRY_DELAY
A_FETCH = 6       # L2 I/absent: allocate and fetch from DRAM
A_APPLY = 7       # L2 V: apply write/atomic
A_MERGE_WR = 8    # L2 IV: ack write against the MSHR (RCC write merge)

# (event, state) -> action, indexed by state code; the final cell is the
# *_NONE (no tag entry) state.
RCC_L1_LOAD = (A_UNREACHED, A_VHIT, A_MISS, A_UNREACHED, A_UNREACHED,
               A_MISS)
MESI_L1_LOAD = (A_UNREACHED, A_VHIT, A_MISS, A_UNREACHED, A_UNREACHED,
                A_MISS)
RCC_L2_GETS = (A_FETCH, A_GRANT, A_MERGE_RD, A_RETRY, A_FETCH)
RCC_L2_WRITE = (A_FETCH, A_APPLY, A_MERGE_WR, A_RETRY, A_FETCH)
RCC_L2_ATOMIC = (A_FETCH, A_APPLY, A_RETRY, A_RETRY, A_FETCH)
MESI_L2_GETS = (A_FETCH, A_GRANT, A_MERGE_RD, A_UNREACHED, A_FETCH)
MESI_L2_GETX = (A_FETCH, A_APPLY, A_MERGE_WR, A_UNREACHED, A_FETCH)

# Result codes returned by the fused handlers ---------------------------
R_ERR = -1         # broken invariant; wrapper re-raises canonically
R_STALL = 0        # L1: bounce the access (full MSHR / all ways pinned)
R_HIT = 1          # L1 hit completed in-kernel; wrapper emits + completes
R_MISS_MERGE = 2   # L1 miss merged into an outstanding GETS
R_MISS_SEND = 3    # L1 miss on an existing line; wrapper sends GETS
R_MISS_INSERT = 4  # L1 miss needing a line fill; wrapper inserts + sends
R_SEND = 5         # L1 store/atomic accepted; wrapper sends WRITE/GETX
R_RETRY = 6        # L2 blocked; wrapper re-queues after RETRY_DELAY
R_GRANT_DATA = 7   # L2 read grant with data
R_GRANT_RENEW = 8  # L2 data-less RENEW grant
R_NEED_LEASE = 9   # L2 grant under a non-built-in policy; wrapper decides
R_MERGE_RD = 10    # L2 reader merged into the MSHR (done in-kernel)
R_MERGE_WR = 11    # L2 write merged + ack values ready
R_APPLY = 12       # L2 V-state write/atomic applied (MESI: defer to wrapper)
R_FETCH = 13       # L2 read miss; wrapper inserts line + fetches DRAM
R_FETCH_WR = 14    # L2 write miss; wrapper inserts + acks + fetches
R_FETCH_AT = 15    # L2 atomic miss; wrapper inserts IAV + fetches
R_GRANT = 16       # MESI L2 sharer-add grant
R_INV_FANOUT = 17  # MESI L2 write blocked on sharer invalidation

# Lease-policy codes (exact type of the bank's policy object) -----------
P_FIXED = 0
P_ADAPTIVE = 1
P_PCPRED = 2
P_OTHER = 3        # registered subclass: hot defers via R_NEED_LEASE

# L1 stats indices (pinned against L1Stats.FIELDS) ----------------------
ST1_LOADS = 0
ST1_LOAD_HITS = 1
ST1_LOAD_MISSES = 2
ST1_LOAD_EXPIRED = 3
ST1_STORES = 4
ST1_ATOMICS = 5
ST1_RENEWS = 6
ST1_INVALS_RECV = 7
ST1_SELF_INVALS = 8
ST1_EVICTIONS = 9
ST1_FLUSHES = 10

# L2 stats indices (pinned against L2Stats.FIELDS) ----------------------
ST2_GETS = 0
ST2_WRITES = 1
ST2_ATOMICS = 2
ST2_HITS = 3
ST2_MISSES = 4
ST2_EVICTIONS = 5
ST2_WRITEBACKS = 6
ST2_GETS_EXPIRED = 7
ST2_RENEW_GRANTS = 8
ST2_INVALS_SENT = 9
ST2_STORE_WAIT = 10
ST2_ROLLOVERS = 11

# L1 context layout (built by repro.kernel.layout.build_l1_ctx) ---------
CTX1_TAG = 0        # Dict[int, int]: block -> slot
CTX1_STATE = 1      # List[int]
CTX1_EXP = 2        # List[int]
CTX1_LRU = 3        # List[int]
CTX1_PIN = 4        # List[bool]
CTX1_USED = 5       # List[bool]
CTX1_VALUE = 6      # list (opaque data tokens)
CTX1_MTAG = 7       # Dict[int, int]: block -> MSHR slot
CTX1_MFREE = 8      # List[int]: free MSHR slots (LIFO)
CTX1_MLOADS = 9     # list of lists: waiting (record, warp[, snapshot])
CTX1_MSTORES = 10   # list of lists: pending (record, warp)
CTX1_MGETS = 11     # List[bool]: GETS outstanding for the block
CTX1_MPEAK = 12     # List[int] box: peak MSHR occupancy
CTX1_STATS = 13     # List[int]: L1Stats backing list
CTX1_LRUBOX = 14    # List[int] box: shared global LRU clock
CTX1_MCAP = 15      # int: MSHR capacity
CTX1_ASSOC = 16     # int
CTX1_NSETS = 17     # int
CTX1_SHIFT = 18     # int: block shift

# L2 context layout (built by repro.kernel.layout.build_l2_ctx) ---------
CTX2_TAG = 0
CTX2_STATE = 1
CTX2_EXP = 2
CTX2_VER = 3
CTX2_LRU = 4
CTX2_PIN = 5
CTX2_USED = 6
CTX2_VALUE = 7      # list (opaque)
CTX2_DIRTY = 8      # List[bool]
CTX2_META = 9       # list of Optional[dict] (policy state, inv_pending)
CTX2_SHARERS = 10   # list of Optional[set] (MESI)
CTX2_MTAG = 11
CTX2_MFREE = 12
CTX2_MLASTRD = 13   # List[int]
CTX2_MLASTWR = 14   # List[int]
CTX2_MHASRD = 15    # List[bool]
CTX2_MHASWR = 16    # List[bool]
CTX2_MSTOREVAL = 17  # list (opaque merged store tokens)
CTX2_MLOADS = 18    # list of lists: waiting requester Messages
CTX2_MSTORES = 19   # list of lists: MESI merged (msg, atomic) tuples
CTX2_MMETA = 20     # list of Optional[dict]
CTX2_MPEAK = 21
CTX2_STATS = 22     # List[int]: L2Stats backing list
CTX2_LRUBOX = 23
CTX2_PCTABLE = 24   # Dict[int, int]: pc-pred table (policy instance dict)
CTX2_MCAP = 25
CTX2_ASSOC = 26
CTX2_NSETS = 27
CTX2_SHIFT = 28
CTX2_POL = 29       # P_* code
CTX2_POLEN = 30     # bool: fixed policy's predictor_enabled
CTX2_LMIN = 31
CTX2_LMAX = 32
CTX2_LDEF = 33
CTX2_RENEW = 34     # bool: renew_enabled


# ----------------------------------------------------------------------
# Tag-array slot management
# ----------------------------------------------------------------------

def can_fill(c_used: List[bool], c_pinned: List[bool], base: int,
             assoc: int) -> bool:
    """Whether the set starting at ``base`` could accept a fill: any free
    way, or any occupied-but-unpinned way (a victim exists). The boolean
    twin of :func:`pick_slot` for allocation *probes* (``would_stall``
    runs one per issue attempt): no LRU or state reads, and it early-exits
    on the first eligible way."""
    for slot in range(base, base + assoc):
        if not c_used[slot] or not c_pinned[slot]:
            return True
    return False


def pick_slot(c_used: List[bool], c_state: List[int], c_lru: List[int],
              c_pinned: List[bool], base: int, assoc: int,
              inv_code: int) -> int:
    """Fill target for the set starting at ``base``: the first free way
    if one exists, else the :func:`pick_victim` LRU victim, else -1.

    Single-pass fusion of the free-way scan + ``pick_victim`` for the
    steady-state insert path (in a warmed-up cache every set is full, so
    the separate free-way scan is a guaranteed miss paid on every fill).
    The caller distinguishes the cases by ``c_used[slot]``: free ways
    need no eviction. Behavior is pinned identical to the two-scan pair
    by the victim-parity battery.
    """
    best = -1
    best_lru = 0
    best_inv = -1
    best_inv_lru = 0
    for slot in range(base, base + assoc):
        if not c_used[slot]:
            return slot
        if c_pinned[slot]:
            continue
        lru = c_lru[slot]
        if c_state[slot] == inv_code:
            if best_inv < 0 or lru < best_inv_lru:
                best_inv = slot
                best_inv_lru = lru
        elif best < 0 or lru < best_lru:
            best = slot
            best_lru = lru
    return best_inv if best_inv >= 0 else best


def pick_victim(c_used: List[bool], c_state: List[int], c_lru: List[int],
                c_pinned: List[bool], base: int, assoc: int,
                inv_code: int) -> int:
    """LRU victim slot for the set starting at ``base``, or -1.

    Mirrors ``CacheArray._pick_victim`` exactly: pinned ways are never
    victims; ways in the protocol's invalid state are preferred
    categorically; otherwise the minimum LRU tick wins with a strict
    ``<``. LRU ticks are globally unique (one shared clock box across
    both kernels), so the minimum is unique and the scan order — way
    order here, set-dict insertion order in the object array — cannot
    change the outcome.
    """
    best = -1
    best_lru = 0
    best_inv = -1
    best_inv_lru = 0
    for slot in range(base, base + assoc):
        if not c_used[slot] or c_pinned[slot]:
            continue
        lru = c_lru[slot]
        if c_state[slot] == inv_code:
            if best_inv < 0 or lru < best_inv_lru:
                best_inv = slot
                best_inv_lru = lru
        elif best < 0 or lru < best_lru:
            best = slot
            best_lru = lru
    return best_inv if best_inv >= 0 else best


def fill_slot(tag: Dict[int, int], c_used: List[bool], c_addr: List[int],
              c_state: List[int], c_exp: List[int], c_ver: List[int],
              c_dirty: List[bool], c_value: list, c_pinned: List[bool],
              c_sharers: list, c_meta: list, c_lru: List[int],
              lru_box: List[int], block: int, slot: int,
              state_code: int) -> None:
    """Reset ``slot`` to a fresh line for ``block`` — the column half of
    ``CacheLine.__init__`` — consuming one LRU tick exactly where the
    object kernel does. The caller handles victim detach/eviction."""
    c_used[slot] = True
    c_addr[slot] = block
    c_state[slot] = state_code
    c_exp[slot] = 0
    c_ver[slot] = 0
    c_dirty[slot] = False
    c_value[slot] = None
    c_pinned[slot] = False
    c_sharers[slot] = None
    c_meta[slot] = None
    t = lru_box[0] + 1
    lru_box[0] = t
    c_lru[slot] = t
    tag[block] = slot


# ----------------------------------------------------------------------
# MSHR column bookkeeping
# ----------------------------------------------------------------------

def _l1_mshr_alloc(ctx: list, block: int) -> int:
    """Get-or-create the L1 MSHR slot for ``block`` (capacity is checked
    by the caller). Mirrors ``MSHRFile.allocate`` including the peak
    update point."""
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    ms = mtag.get(block, -1)
    if ms >= 0:
        return ms
    mfree: List[int] = ctx[CTX1_MFREE]
    ms = mfree.pop()
    m_loads: list = ctx[CTX1_MLOADS]
    m_stores: list = ctx[CTX1_MSTORES]
    m_gets: List[bool] = ctx[CTX1_MGETS]
    m_loads[ms] = []
    m_stores[ms] = []
    m_gets[ms] = False
    mtag[block] = ms
    m_peak: List[int] = ctx[CTX1_MPEAK]
    n = len(mtag)
    if n > m_peak[0]:
        m_peak[0] = n
    return ms


def _l2_mshr_alloc(ctx: list, block: int) -> int:
    """Get-or-create the L2 MSHR slot for ``block``."""
    mtag: Dict[int, int] = ctx[CTX2_MTAG]
    ms = mtag.get(block, -1)
    if ms >= 0:
        return ms
    mfree: List[int] = ctx[CTX2_MFREE]
    ms = mfree.pop()
    m_lastrd: List[int] = ctx[CTX2_MLASTRD]
    m_lastwr: List[int] = ctx[CTX2_MLASTWR]
    m_hasrd: List[bool] = ctx[CTX2_MHASRD]
    m_haswr: List[bool] = ctx[CTX2_MHASWR]
    m_store: list = ctx[CTX2_MSTOREVAL]
    m_loads: list = ctx[CTX2_MLOADS]
    m_stores: list = ctx[CTX2_MSTORES]
    m_meta: list = ctx[CTX2_MMETA]
    m_lastrd[ms] = 0
    m_lastwr[ms] = 0
    m_hasrd[ms] = False
    m_haswr[ms] = False
    m_store[ms] = None
    m_loads[ms] = []
    m_stores[ms] = []
    m_meta[ms] = None
    mtag[block] = ms
    m_peak: List[int] = ctx[CTX2_MPEAK]
    n = len(mtag)
    if n > m_peak[0]:
        m_peak[0] = n
    return ms


# ----------------------------------------------------------------------
# Lease-policy arithmetic (built-in policies; P_OTHER defers)
# ----------------------------------------------------------------------
# Per-line policy state lives in the ``c_meta`` dicts under the *same*
# string keys the object policies use, so the inherited cold paths (DRAM
# fills, ``prediction()`` inspection) and the hot kernel read and write
# one copy of state. All stored values are >= 0, so -1 is a safe absent
# sentinel for ``dict.get``.

def _policy_lease_for(ctx: list, slot: int, now: int, ver: int,
                      has_pc: bool, pc: int) -> int:
    pol: int = ctx[CTX2_POL]
    lmax: int = ctx[CTX2_LMAX]
    ldef: int = ctx[CTX2_LDEF]
    if pol == P_FIXED:
        enabled: bool = ctx[CTX2_POLEN]
        if not enabled:
            return ldef
        c_meta: list = ctx[CTX2_META]
        m = c_meta[slot]
        if m is None:
            return lmax
        pred: int = m.get("lease_pred", lmax)
        return pred
    lmin: int = ctx[CTX2_LMIN]
    if pol == P_ADAPTIVE:
        c_meta = ctx[CTX2_META]
        m = c_meta[slot]
        if m is None:
            m = {}
            c_meta[slot] = m
        point = now if now > ver else ver
        last: int = m.get("lease_adapt_last", -1)
        if last >= 0:
            dist = point - last
            if dist < 0:
                dist = 0
            avg: int = m.get("lease_adapt_dist", -1)
            m["lease_adapt_dist"] = (dist if avg < 0
                                     else (3 * avg + dist) // 4)
        m["lease_adapt_last"] = point
        avg2: int = m.get("lease_adapt_dist", -1)
        lease = ldef if avg2 < 0 else 2 * avg2
        if lease < lmin:
            return lmin
        if lease > lmax:
            return lmax
        return lease
    if pol == P_PCPRED:
        if not has_pc:
            lease = ldef
        else:
            table: Dict[int, int] = ctx[CTX2_PCTABLE]
            lease = table.get(pc, lmax)
        if lease < lmin:
            return lmin
        if lease > lmax:
            return lmax
        return lease
    return ldef  # P_OTHER: unreachable — the wrapper gates on R_NEED_LEASE


def _policy_on_write(ctx: list, slot: int) -> None:
    pol: int = ctx[CTX2_POL]
    if pol == P_FIXED:
        enabled: bool = ctx[CTX2_POLEN]
        if enabled:
            c_meta: list = ctx[CTX2_META]
            m = c_meta[slot]
            if m is None:
                m = {}
                c_meta[slot] = m
            lmin: int = ctx[CTX2_LMIN]
            m["lease_pred"] = lmin
    elif pol == P_ADAPTIVE:
        c_meta = ctx[CTX2_META]
        m = c_meta[slot]
        if m is not None:
            avg: int = m.get("lease_adapt_dist", -1)
            if avg >= 0:
                m["lease_adapt_dist"] = avg // 2


def _policy_on_renew(ctx: list, slot: int, has_pc: bool, pc: int) -> None:
    pol: int = ctx[CTX2_POL]
    lmax: int = ctx[CTX2_LMAX]
    if pol == P_FIXED:
        enabled: bool = ctx[CTX2_POLEN]
        if enabled:
            c_meta: list = ctx[CTX2_META]
            m = c_meta[slot]
            if m is None:
                m = {}
                c_meta[slot] = m
            cur: int = m.get("lease_pred", lmax)
            cur *= 2
            m["lease_pred"] = cur if cur < lmax else lmax
    elif pol == P_PCPRED:
        if has_pc:
            table: Dict[int, int] = ctx[CTX2_PCTABLE]
            cur = table.get(pc, lmax)
            cur *= 2
            table[pc] = cur if cur < lmax else lmax


def _policy_on_expired_miss(ctx: list, slot: int, has_pc: bool,
                            pc: int) -> None:
    pol: int = ctx[CTX2_POL]
    if pol == P_ADAPTIVE:
        c_meta: list = ctx[CTX2_META]
        m = c_meta[slot]
        if m is not None:
            avg: int = m.get("lease_adapt_dist", -1)
            if avg >= 0:
                m["lease_adapt_dist"] = avg // 2
    elif pol == P_PCPRED:
        if has_pc:
            table: Dict[int, int] = ctx[CTX2_PCTABLE]
            lmax: int = ctx[CTX2_LMAX]
            lmin: int = ctx[CTX2_LMIN]
            cur: int = table.get(pc, lmax)
            cur //= 2
            table[pc] = cur if cur > lmin else lmin


# ----------------------------------------------------------------------
# L1 handlers
# ----------------------------------------------------------------------

def rcc_l1_load(ctx: list, block: int, rnow: int, out: List[int]) -> int:
    """Fused RCC L1 load dispatch.

    Returns R_HIT (out[0]=slot, lease-valid hit, stats + LRU done),
    R_STALL, or one of the miss codes with out[0]=MSHR slot and
    out[1]=expired flag; R_MISS_SEND additionally leaves the old-exp
    renew hint in out[2] (present flag) / out[3] (value). The wrapper
    appends the waiting-load payload, emits, and sends."""
    tag: Dict[int, int] = ctx[CTX1_TAG]
    c_state: List[int] = ctx[CTX1_STATE]
    c_exp: List[int] = ctx[CTX1_EXP]
    stats: List[int] = ctx[CTX1_STATS]
    slot = tag.get(block, -1)
    st = L1_NONE if slot < 0 else c_state[slot]

    if RCC_L1_LOAD[st] == A_VHIT and rnow <= c_exp[slot]:
        stats[ST1_LOADS] += 1
        stats[ST1_LOAD_HITS] += 1
        lru_box: List[int] = ctx[CTX1_LRUBOX]
        c_lru: List[int] = ctx[CTX1_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        out[0] = slot
        return R_HIT

    expired = st == L1_V and rnow > c_exp[slot]
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    mcap: int = ctx[CTX1_MCAP]
    in_mshr = block in mtag
    if not in_mshr and len(mtag) >= mcap:
        return R_STALL
    if slot < 0:
        shift: int = ctx[CTX1_SHIFT]
        n_sets: int = ctx[CTX1_NSETS]
        assoc: int = ctx[CTX1_ASSOC]
        base = ((block >> shift) % n_sets) * assoc
        c_used: List[bool] = ctx[CTX1_USED]
        c_pinned: List[bool] = ctx[CTX1_PIN]
        if not can_fill(c_used, c_pinned, base, assoc):
            return R_STALL  # all ways pinned by transients
    stats[ST1_LOADS] += 1
    if expired:
        stats[ST1_LOAD_EXPIRED] += 1
    stats[ST1_LOAD_MISSES] += 1
    ms = _l1_mshr_alloc(ctx, block)
    out[0] = ms
    out[1] = 1 if expired else 0
    m_gets: List[bool] = ctx[CTX1_MGETS]
    if m_gets[ms]:
        return R_MISS_MERGE  # merge into the outstanding GETS
    m_gets[ms] = True
    if slot < 0:
        return R_MISS_INSERT
    old_flag = 0
    old_exp = 0
    c_value: list = ctx[CTX1_VALUE]
    if c_value[slot] is not None:
        old_flag = 1
        old_exp = c_exp[slot]
    c_state[slot] = L1_IV
    pin: List[bool] = ctx[CTX1_PIN]
    pin[slot] = True
    out[2] = old_flag
    out[3] = old_exp
    return R_MISS_SEND


def rcc_l1_would_stall(ctx: list, block: int, rnow: int,
                       is_load: bool) -> bool:
    """Side-effect-free probe of :func:`rcc_l1_load`'s STALL exits (and
    the store path's MSHR-full exit)."""
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    in_mshr = block in mtag
    if is_load:
        tag: Dict[int, int] = ctx[CTX1_TAG]
        c_state: List[int] = ctx[CTX1_STATE]
        c_exp: List[int] = ctx[CTX1_EXP]
        slot = tag.get(block, -1)
        if slot >= 0 and c_state[slot] == L1_V and rnow <= c_exp[slot]:
            return False
        mcap: int = ctx[CTX1_MCAP]
        if not in_mshr and len(mtag) >= mcap:
            return True
        if slot >= 0:
            return False
        shift: int = ctx[CTX1_SHIFT]
        n_sets: int = ctx[CTX1_NSETS]
        assoc: int = ctx[CTX1_ASSOC]
        base = ((block >> shift) % n_sets) * assoc
        c_used: List[bool] = ctx[CTX1_USED]
        c_pinned: List[bool] = ctx[CTX1_PIN]
        return not can_fill(c_used, c_pinned, base, assoc)
    mcap2: int = ctx[CTX1_MCAP]
    return not in_mshr and len(mtag) >= mcap2


def rcc_l1_store(ctx: list, block: int, is_atomic: bool,
                 out: List[int]) -> int:
    """Fused RCC L1 store/atomic issue: stall check, stat bump, MSHR
    allocation, transient pinning. out[0] = MSHR slot; the wrapper
    appends the pending store and sends WRITE/ATOMIC."""
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    mcap: int = ctx[CTX1_MCAP]
    if block not in mtag and len(mtag) >= mcap:
        return R_STALL
    stats: List[int] = ctx[CTX1_STATS]
    if is_atomic:
        stats[ST1_ATOMICS] += 1
    else:
        stats[ST1_STORES] += 1
    ms = _l1_mshr_alloc(ctx, block)
    tag: Dict[int, int] = ctx[CTX1_TAG]
    slot = tag.get(block, -1)
    if slot >= 0:
        pin: List[bool] = ctx[CTX1_PIN]
        pin[slot] = True  # VI/II transients are not evictable
    out[0] = ms
    return R_SEND


def mesi_l1_load(ctx: list, block: int, out: List[int]) -> int:
    """Fused MESI L1 load dispatch (no lease check)."""
    tag: Dict[int, int] = ctx[CTX1_TAG]
    c_state: List[int] = ctx[CTX1_STATE]
    stats: List[int] = ctx[CTX1_STATS]
    slot = tag.get(block, -1)
    st = L1_NONE if slot < 0 else c_state[slot]
    if MESI_L1_LOAD[st] == A_VHIT:
        stats[ST1_LOADS] += 1
        stats[ST1_LOAD_HITS] += 1
        lru_box: List[int] = ctx[CTX1_LRUBOX]
        c_lru: List[int] = ctx[CTX1_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        out[0] = slot
        return R_HIT
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    mcap: int = ctx[CTX1_MCAP]
    if block not in mtag and len(mtag) >= mcap:
        return R_STALL
    if slot < 0:
        shift: int = ctx[CTX1_SHIFT]
        n_sets: int = ctx[CTX1_NSETS]
        assoc: int = ctx[CTX1_ASSOC]
        base = ((block >> shift) % n_sets) * assoc
        c_used: List[bool] = ctx[CTX1_USED]
        c_pinned: List[bool] = ctx[CTX1_PIN]
        if not can_fill(c_used, c_pinned, base, assoc):
            return R_STALL
    stats[ST1_LOADS] += 1
    stats[ST1_LOAD_MISSES] += 1
    ms = _l1_mshr_alloc(ctx, block)
    out[0] = ms
    m_gets: List[bool] = ctx[CTX1_MGETS]
    if m_gets[ms]:
        return R_MISS_MERGE
    m_gets[ms] = True
    if slot < 0:
        return R_MISS_INSERT
    c_state[slot] = L1_IV
    pin: List[bool] = ctx[CTX1_PIN]
    pin[slot] = True
    return R_MISS_SEND


def mesi_l1_would_stall(ctx: list, block: int, is_load: bool) -> bool:
    """Probe of the MESI L1 STALL exits, including the same-block store
    serialization stall."""
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    ms = mtag.get(block, -1)
    if is_load:
        tag: Dict[int, int] = ctx[CTX1_TAG]
        c_state: List[int] = ctx[CTX1_STATE]
        slot = tag.get(block, -1)
        if slot >= 0 and c_state[slot] == L1_V:
            return False
        mcap: int = ctx[CTX1_MCAP]
        if ms < 0 and len(mtag) >= mcap:
            return True
        if slot >= 0:
            return False
        shift: int = ctx[CTX1_SHIFT]
        n_sets: int = ctx[CTX1_NSETS]
        assoc: int = ctx[CTX1_ASSOC]
        base = ((block >> shift) % n_sets) * assoc
        c_used: List[bool] = ctx[CTX1_USED]
        c_pinned: List[bool] = ctx[CTX1_PIN]
        return not can_fill(c_used, c_pinned, base, assoc)
    if ms >= 0:
        m_stores: list = ctx[CTX1_MSTORES]
        lst = m_stores[ms]
        if len(lst) > 0:
            return True
        return False
    mcap2: int = ctx[CTX1_MCAP]
    return len(mtag) >= mcap2


def mesi_l1_store(ctx: list, block: int, is_atomic: bool,
                  out: List[int]) -> int:
    """Fused MESI L1 store/atomic issue: serialization + capacity stall
    checks, stat bumps, MSHR allocation, write-through bookkeeping.
    out[0] = MSHR slot, out[1] = 1 when the V copy must self-invalidate
    (the wrapper removes the line and emits)."""
    mtag: Dict[int, int] = ctx[CTX1_MTAG]
    ms = mtag.get(block, -1)
    if ms >= 0:
        m_stores: list = ctx[CTX1_MSTORES]
        lst = m_stores[ms]
        if len(lst) > 0:
            # Same-block stores serialize until the previous ack returns.
            return R_STALL
    else:
        mcap: int = ctx[CTX1_MCAP]
        if len(mtag) >= mcap:
            return R_STALL
    stats: List[int] = ctx[CTX1_STATS]
    if is_atomic:
        stats[ST1_ATOMICS] += 1
    else:
        stats[ST1_STORES] += 1
    ms = _l1_mshr_alloc(ctx, block)
    tag: Dict[int, int] = ctx[CTX1_TAG]
    slot = tag.get(block, -1)
    was_v = 0
    if slot >= 0:
        c_state: List[int] = ctx[CTX1_STATE]
        if c_state[slot] == L1_V:
            was_v = 1  # write-through, write-no-allocate: drop the copy
            stats[ST1_SELF_INVALS] += 1
        else:
            pin: List[bool] = ctx[CTX1_PIN]
            pin[slot] = True
    out[0] = ms
    out[1] = was_v
    return R_SEND


# ----------------------------------------------------------------------
# RCC L2 handlers
# ----------------------------------------------------------------------

def _l2_can_alloc(ctx: list, block: int, slot: int) -> bool:
    if slot >= 0:
        return True
    shift: int = ctx[CTX2_SHIFT]
    n_sets: int = ctx[CTX2_NSETS]
    assoc: int = ctx[CTX2_ASSOC]
    base = ((block >> shift) % n_sets) * assoc
    c_used: List[bool] = ctx[CTX2_USED]
    c_pinned: List[bool] = ctx[CTX2_PIN]
    return can_fill(c_used, c_pinned, base, assoc)


def rcc_l2_gets(ctx: list, block: int, m_now: int, has_exp: bool,
                m_exp: int, counted: bool, expired: bool, has_pc: bool,
                pc: int, msg: Any, out: List[int]) -> int:
    """Fused RCC L2 GETS dispatch: stats, table lookup, and for V-state
    grants the whole lease computation (policy arithmetic, exp update,
    LRU touch, renew decision). Grant returns leave out = [slot, ver,
    exp, prev_exp, lease]; the wrapper draws the arrival, emits, and
    sends DATA/RENEW. Non-built-in policies return R_NEED_LEASE after
    the hit stat (the wrapper runs the object-path grant)."""
    stats: List[int] = ctx[CTX2_STATS]
    if not counted:
        stats[ST2_GETS] += 1
        if expired:
            stats[ST2_GETS_EXPIRED] += 1
    tag: Dict[int, int] = ctx[CTX2_TAG]
    c_state: List[int] = ctx[CTX2_STATE]
    slot = tag.get(block, -1)
    st = L2_NONE if slot < 0 else c_state[slot]
    act = RCC_L2_GETS[st]

    if act == A_GRANT:
        stats[ST2_HITS] += 1
        pol: int = ctx[CTX2_POL]
        if pol == P_OTHER:
            out[0] = slot
            return R_NEED_LEASE
        c_ver: List[int] = ctx[CTX2_VER]
        c_exp: List[int] = ctx[CTX2_EXP]
        ver = c_ver[slot]
        lease = _policy_lease_for(ctx, slot, m_now, ver, has_pc, pc)
        prev_exp = c_exp[slot]
        exp = prev_exp
        t = ver + lease
        if t > exp:
            exp = t
        t = m_now + lease
        if t > exp:
            exp = t
        c_exp[slot] = exp
        lru_box: List[int] = ctx[CTX2_LRUBOX]
        c_lru: List[int] = ctx[CTX2_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        renew_en: bool = ctx[CTX2_RENEW]
        renewing = renew_en and has_exp and m_exp > ver
        if has_exp and m_exp <= ver:
            # The requester's lease outlived the data (written since):
            # the policy's mispredict signal, independent of renewal.
            _policy_on_expired_miss(ctx, slot, has_pc, pc)
        if renewing:
            stats[ST2_RENEW_GRANTS] += 1
            _policy_on_renew(ctx, slot, has_pc, pc)
        out[0] = slot
        out[1] = ver
        out[2] = exp
        out[3] = prev_exp
        out[4] = lease
        return R_GRANT_RENEW if renewing else R_GRANT_DATA
    if act == A_RETRY:
        return R_RETRY
    if act == A_MERGE_RD:
        ms = _l2_mshr_alloc(ctx, block)
        m_lastrd: List[int] = ctx[CTX2_MLASTRD]
        if m_now > m_lastrd[ms]:
            m_lastrd[ms] = m_now
        m_hasrd: List[bool] = ctx[CTX2_MHASRD]
        m_hasrd[ms] = True
        m_loads: list = ctx[CTX2_MLOADS]
        m_loads[ms].append(msg)
        return R_MERGE_RD
    # A_FETCH: miss, fetch from DRAM.
    mtag: Dict[int, int] = ctx[CTX2_MTAG]
    mcap: int = ctx[CTX2_MCAP]
    if not (len(mtag) < mcap or block in mtag):
        return R_RETRY
    if not _l2_can_alloc(ctx, block, slot):
        return R_RETRY
    stats[ST2_MISSES] += 1
    ms = _l2_mshr_alloc(ctx, block)
    m_lastrd2: List[int] = ctx[CTX2_MLASTRD]
    if m_now > m_lastrd2[ms]:
        m_lastrd2[ms] = m_now
    m_hasrd2: List[bool] = ctx[CTX2_MHASRD]
    m_hasrd2[ms] = True
    m_loads2: list = ctx[CTX2_MLOADS]
    m_loads2[ms].append(msg)
    return R_FETCH


def _rcc_l2_merge_write(ctx: list, block: int, m_now: int,
                        value: Any) -> int:
    """IV-state write merge bookkeeping; returns the merged ``lastwr``.
    The final version is ``max(lastwr, mnow)`` — computed by the wrapper
    *after* any line insertion, because an eviction there bumps mnow."""
    ms = _l2_mshr_alloc(ctx, block)
    m_lastwr: List[int] = ctx[CTX2_MLASTWR]
    if m_now > m_lastwr[ms]:
        m_lastwr[ms] = m_now
    m_store: list = ctx[CTX2_MSTOREVAL]
    m_store[ms] = value
    m_haswr: List[bool] = ctx[CTX2_MHASWR]
    m_haswr[ms] = True
    return m_lastwr[ms]


def rcc_l2_write(ctx: list, block: int, m_now: int, counted: bool,
                 value: Any, out: List[int]) -> int:
    """Fused RCC L2 WRITE dispatch. R_APPLY leaves out = [slot, ver,
    prev_ver, prev_exp] (instant write permission: ver = max(m_now, ver,
    exp+1), columns updated, built-in policy observed). R_MERGE_WR /
    R_FETCH_WR leave out[0] = merged lastwr."""
    stats: List[int] = ctx[CTX2_STATS]
    if not counted:
        stats[ST2_WRITES] += 1
    tag: Dict[int, int] = ctx[CTX2_TAG]
    c_state: List[int] = ctx[CTX2_STATE]
    slot = tag.get(block, -1)
    st = L2_NONE if slot < 0 else c_state[slot]
    act = RCC_L2_WRITE[st]

    if act == A_APPLY:
        stats[ST2_HITS] += 1
        c_ver: List[int] = ctx[CTX2_VER]
        c_exp: List[int] = ctx[CTX2_EXP]
        prev_ver = c_ver[slot]
        prev_exp = c_exp[slot]
        # Rules 2+3: past the writer's now, the last write, and every
        # outstanding lease — computed locally, acknowledged instantly.
        ver = prev_exp + 1
        if prev_ver > ver:
            ver = prev_ver
        if m_now > ver:
            ver = m_now
        c_ver[slot] = ver
        c_value: list = ctx[CTX2_VALUE]
        c_value[slot] = value
        c_dirty: List[bool] = ctx[CTX2_DIRTY]
        c_dirty[slot] = True
        lru_box: List[int] = ctx[CTX2_LRUBOX]
        c_lru: List[int] = ctx[CTX2_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        pol: int = ctx[CTX2_POL]
        if pol != P_OTHER:
            _policy_on_write(ctx, slot)
        out[0] = slot
        out[1] = ver
        out[2] = prev_ver
        out[3] = prev_exp
        return R_APPLY
    if act == A_RETRY:
        return R_RETRY
    if act == A_MERGE_WR:
        out[0] = _rcc_l2_merge_write(ctx, block, m_now, value)
        return R_MERGE_WR
    # A_FETCH: allocate, ack against lastwr/mnow, fetch in background.
    mtag: Dict[int, int] = ctx[CTX2_MTAG]
    mcap: int = ctx[CTX2_MCAP]
    if not (len(mtag) < mcap or block in mtag):
        return R_RETRY
    if not _l2_can_alloc(ctx, block, slot):
        return R_RETRY
    stats[ST2_MISSES] += 1
    out[0] = _rcc_l2_merge_write(ctx, block, m_now, value)
    return R_FETCH_WR


def rcc_l2_atomic(ctx: list, block: int, m_now: int, counted: bool,
                  value: Any, obox: list, out: List[int]) -> int:
    """Fused RCC L2 ATOMIC dispatch. R_APPLY leaves out = [slot, ver,
    prev_ver, prev_exp] and the pre-RMW value in obox[0]; R_FETCH_AT
    leaves out[0] = MSHR slot (the wrapper inserts the IAV line, stashes
    the message, and fetches)."""
    stats: List[int] = ctx[CTX2_STATS]
    if not counted:
        stats[ST2_ATOMICS] += 1
    tag: Dict[int, int] = ctx[CTX2_TAG]
    c_state: List[int] = ctx[CTX2_STATE]
    slot = tag.get(block, -1)
    st = L2_NONE if slot < 0 else c_state[slot]
    act = RCC_L2_ATOMIC[st]

    if act == A_APPLY:
        stats[ST2_HITS] += 1
        c_ver: List[int] = ctx[CTX2_VER]
        c_exp: List[int] = ctx[CTX2_EXP]
        prev_ver = c_ver[slot]
        prev_exp = c_exp[slot]
        ver = prev_exp + 1
        if prev_ver > ver:
            ver = prev_ver
        if m_now > ver:
            ver = m_now
        c_value: list = ctx[CTX2_VALUE]
        obox[0] = c_value[slot]
        c_ver[slot] = ver
        c_value[slot] = value
        c_dirty: List[bool] = ctx[CTX2_DIRTY]
        c_dirty[slot] = True
        lru_box: List[int] = ctx[CTX2_LRUBOX]
        c_lru: List[int] = ctx[CTX2_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        pol: int = ctx[CTX2_POL]
        if pol != P_OTHER:
            _policy_on_write(ctx, slot)
        out[0] = slot
        out[1] = ver
        out[2] = prev_ver
        out[3] = prev_exp
        return R_APPLY
    if act == A_RETRY:  # IV or IAV: stall all further requests
        return R_RETRY
    # A_FETCH: miss in I — fetch and run the RMW when data arrives.
    mtag: Dict[int, int] = ctx[CTX2_MTAG]
    mcap: int = ctx[CTX2_MCAP]
    if len(mtag) >= mcap:
        return R_RETRY
    if not _l2_can_alloc(ctx, block, slot):
        return R_RETRY
    stats[ST2_MISSES] += 1
    ms = _l2_mshr_alloc(ctx, block)
    m_lastwr: List[int] = ctx[CTX2_MLASTWR]
    if m_now > m_lastwr[ms]:
        m_lastwr[ms] = m_now
    m_haswr: List[bool] = ctx[CTX2_MHASWR]
    m_haswr[ms] = True
    out[0] = ms
    return R_FETCH_AT


# ----------------------------------------------------------------------
# MESI L2 handlers
# ----------------------------------------------------------------------

def mesi_l2_gets(ctx: list, block: int, counted: bool, src: Any,
                 msg: Any, out: List[int]) -> int:
    """Fused MESI L2 GETS dispatch: sharer add + LRU touch for grants
    (out = [slot, len(sharers)]), MSHR merge for IV. A grant blocked on
    a pending invalidation returns R_RETRY; misses return R_FETCH for
    the wrapper's inherited ``_miss_fetch``."""
    stats: List[int] = ctx[CTX2_STATS]
    if not counted:
        stats[ST2_GETS] += 1
    tag: Dict[int, int] = ctx[CTX2_TAG]
    c_state: List[int] = ctx[CTX2_STATE]
    slot = tag.get(block, -1)
    st = L2_NONE if slot < 0 else c_state[slot]
    act = MESI_L2_GETS[st]
    if act == A_GRANT:
        c_meta: list = ctx[CTX2_META]
        m = c_meta[slot]
        if m is not None and m.get("inv_pending") is not None:
            return R_RETRY
        stats[ST2_HITS] += 1
        c_sharers: list = ctx[CTX2_SHARERS]
        s = c_sharers[slot]
        if s is None:
            s = set()
            c_sharers[slot] = s
        s.add(src)
        lru_box: List[int] = ctx[CTX2_LRUBOX]
        c_lru: List[int] = ctx[CTX2_LRU]
        t = lru_box[0] + 1
        lru_box[0] = t
        c_lru[slot] = t
        out[0] = slot
        out[1] = len(s)
        return R_GRANT
    if act == A_MERGE_RD:
        ms = _l2_mshr_alloc(ctx, block)
        m_loads: list = ctx[CTX2_MLOADS]
        m_loads[ms].append(msg)
        return R_MERGE_RD
    return R_FETCH


def mesi_l2_getx(ctx: list, block: int, counted: bool, atomic: bool,
                 msg: Any, scratch: list, out: List[int]) -> int:
    """Fused MESI L2 GETX/ATOMIC dispatch. R_APPLY (out[0]=slot): no
    sharers, wrapper applies the write through the object path.
    R_INV_FANOUT (out = [slot, n]): sharers sorted into ``scratch``,
    ``inv_pending`` installed, line pinned, inval stat bumped — the
    wrapper sends the INVs. R_MERGE_WR: queued behind the outstanding
    fill. R_FETCH: wrapper's inherited ``_miss_fetch``."""
    stats: List[int] = ctx[CTX2_STATS]
    if not counted:
        if atomic:
            stats[ST2_ATOMICS] += 1
        else:
            stats[ST2_WRITES] += 1
    tag: Dict[int, int] = ctx[CTX2_TAG]
    c_state: List[int] = ctx[CTX2_STATE]
    slot = tag.get(block, -1)
    st = L2_NONE if slot < 0 else c_state[slot]
    act = MESI_L2_GETX[st]
    if act == A_APPLY:
        c_meta: list = ctx[CTX2_META]
        m = c_meta[slot]
        if m is not None and m.get("inv_pending") is not None:
            return R_RETRY
        stats[ST2_HITS] += 1
        c_sharers: list = ctx[CTX2_SHARERS]
        s = c_sharers[slot]
        n = 0 if s is None else len(s)
        if n == 0:
            out[0] = slot
            return R_APPLY
        # Sorted so the invalidation order never depends on set iteration
        # order (PYTHONHASHSEED) — as in the object kernel.
        for peer in sorted(s):
            scratch.append(peer)
        if m is None:
            m = {}
            c_meta[slot] = m
        m["inv_pending"] = {"remaining": n, "msg": msg, "atomic": atomic}
        c_pinned: List[bool] = ctx[CTX2_PIN]
        c_pinned[slot] = True  # not evictable while collecting acks
        s.clear()
        stats[ST2_INVALS_SENT] += n
        out[0] = slot
        out[1] = n
        return R_INV_FANOUT
    if act == A_MERGE_WR:
        ms = _l2_mshr_alloc(ctx, block)
        m_stores: list = ctx[CTX2_MSTORES]
        m_stores[ms].append((msg, atomic))
        return R_MERGE_WR
    return R_FETCH


# ----------------------------------------------------------------------
# Engine batch drain
# ----------------------------------------------------------------------

def drain_calls(lst: list, ctl: List[int]) -> None:
    """Drain a cycle bucket known to hold only bare ``schedule_call``
    callbacks (and ``None`` holes) — the engine's steady-state shape.

    ``ctl`` is the engine's drain-control box: [stop, index, event
    appended, fired]. The loop re-reads ``len(lst)`` every iteration
    (callbacks append same-cycle bare callbacks mid-drain) and returns
    control to the Python loop as soon as ``stop()`` is called or a
    handle-carrying :class:`Event` lands in the current bucket
    (ctl[2]); the ``finally`` keeps the resume cursor and fired count
    consistent when a callback raises."""
    idx = ctl[1]
    fired = ctl[3]
    try:
        while idx < len(lst):
            if ctl[0] != 0 or ctl[2] != 0:
                break
            cb = lst[idx]
            idx += 1
            if cb is None:
                continue
            lst[idx - 1] = None
            fired += 1
            cb()
    finally:
        ctl[1] = idx
        ctl[3] = fired
