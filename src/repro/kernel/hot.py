"""Inner-loop primitives of the flat kernel: state codes, transition
tables, and the victim scan.

Everything in this module is integers, booleans, lists, and tuples — no
enums, no objects — so an ahead-of-time compiler (mypyc / Cython, see
``tools/build_kernel.py``) can translate it to a C extension without
boxing. The pure-Python module is the always-available fallback; the two
must stay behaviorally identical (``tests/test_kernel_tables.py`` pins
the encodings against the state enums).

State encodings
---------------
Codes are the **definition order** of the state enums in
:mod:`repro.common.types` (``FlatTagArray`` builds its encode/decode
maps the same way, so the hard-coded constants here and the generic
layout always agree — a unit test asserts it):

* L1: I=0, V=1, IV=2, II=3, VI=4; ``L1_NONE`` = no tag entry.
* L2: I=0, V=1, IV=2, IAV=3; ``L2_NONE`` = no tag entry.

Way occupancy lives in a dedicated ``c_used`` column (not a state-code
sentinel): freeing a way must leave every other column intact so that a
stale :class:`FlatLineView` held across a ``remove`` still reads the
departed line's fields, exactly like a stale ``CacheLine`` reference.

Transition tables
-----------------
One tuple per (controller, input event), indexed by state code, yielding
an action code. The tables encode exactly the state dispatch the object
controllers perform with chained ``is`` tests; the flat handlers branch
on the action. ``A_UNREACHED`` cells are states the protocols never
store in the tag array (e.g. L1 store transients live in the MSHR);
hitting one is a protocol bug.
"""

from typing import List

# L1 state codes (L1State definition order) -----------------------------
L1_I = 0
L1_V = 1
L1_IV = 2
L1_II = 3
L1_VI = 4
L1_NONE = 5

# L2 state codes (L2State definition order) -----------------------------
L2_I = 0
L2_V = 1
L2_IV = 2
L2_IAV = 3
L2_NONE = 4

# Action codes ----------------------------------------------------------
A_UNREACHED = 0   # state never stored in the tag for this event
A_VHIT = 1        # L1 valid-line hit path (lease-checked under RCC)
A_MISS = 2        # L1 miss path (MSHR merge or allocate + GETS)
A_GRANT = 3       # L2 V: grant read (lease / sharer add)
A_MERGE_RD = 4    # L2 IV: merge reader into the MSHR
A_RETRY = 5       # L2 blocking state: requeue after RETRY_DELAY
A_FETCH = 6       # L2 I/absent: allocate and fetch from DRAM
A_APPLY = 7       # L2 V: apply write/atomic
A_MERGE_WR = 8    # L2 IV: ack write against the MSHR (RCC write merge)

# (event, state) -> action, indexed by state code; the final cell is the
# *_NONE (no tag entry) state.
RCC_L1_LOAD = (A_UNREACHED, A_VHIT, A_MISS, A_UNREACHED, A_UNREACHED,
               A_MISS)
MESI_L1_LOAD = (A_UNREACHED, A_VHIT, A_MISS, A_UNREACHED, A_UNREACHED,
                A_MISS)
RCC_L2_GETS = (A_FETCH, A_GRANT, A_MERGE_RD, A_RETRY, A_FETCH)
RCC_L2_WRITE = (A_FETCH, A_APPLY, A_MERGE_WR, A_RETRY, A_FETCH)
RCC_L2_ATOMIC = (A_FETCH, A_APPLY, A_RETRY, A_RETRY, A_FETCH)
MESI_L2_GETS = (A_FETCH, A_GRANT, A_MERGE_RD, A_UNREACHED, A_FETCH)
MESI_L2_GETX = (A_FETCH, A_APPLY, A_MERGE_WR, A_UNREACHED, A_FETCH)


def find_free_way(c_used: List[bool], base: int, assoc: int) -> int:
    """First unoccupied way of the set starting at ``base``, or -1."""
    for slot in range(base, base + assoc):
        if not c_used[slot]:
            return slot
    return -1


def can_fill(c_used: List[bool], c_pinned: List[bool], base: int,
             assoc: int) -> bool:
    """Whether the set starting at ``base`` could accept a fill: any free
    way, or any occupied-but-unpinned way (a victim exists). The boolean
    twin of :func:`pick_slot` for allocation *probes* (``would_stall``
    runs one per issue attempt): no LRU or state reads, and it early-exits
    on the first eligible way."""
    for slot in range(base, base + assoc):
        if not c_used[slot] or not c_pinned[slot]:
            return True
    return False


def pick_slot(c_used: List[bool], c_state: List[int], c_lru: List[int],
              c_pinned: List[bool], base: int, assoc: int,
              inv_code: int) -> int:
    """Fill target for the set starting at ``base``: the first free way
    if one exists, else the :func:`pick_victim` LRU victim, else -1.

    Single-pass fusion of ``find_free_way`` + ``pick_victim`` for the
    steady-state insert path (in a warmed-up cache every set is full, so
    the separate free-way scan is a guaranteed miss paid on every fill).
    The caller distinguishes the cases by ``c_used[slot]``: free ways
    need no eviction. Behavior is pinned identical to the two-scan pair
    by the victim-parity battery.
    """
    best = -1
    best_lru = 0
    best_inv = -1
    best_inv_lru = 0
    for slot in range(base, base + assoc):
        if not c_used[slot]:
            return slot
        if c_pinned[slot]:
            continue
        lru = c_lru[slot]
        if c_state[slot] == inv_code:
            if best_inv < 0 or lru < best_inv_lru:
                best_inv = slot
                best_inv_lru = lru
        elif best < 0 or lru < best_lru:
            best = slot
            best_lru = lru
    return best_inv if best_inv >= 0 else best


def pick_victim(c_used: List[bool], c_state: List[int], c_lru: List[int],
                c_pinned: List[bool], base: int, assoc: int,
                inv_code: int) -> int:
    """LRU victim slot for the set starting at ``base``, or -1.

    Mirrors ``CacheArray._pick_victim`` exactly: pinned ways are never
    victims; ways in the protocol's invalid state are preferred
    categorically; otherwise the minimum LRU tick wins with a strict
    ``<``. LRU ticks are globally unique (one shared ``itertools.count``
    across both kernels), so the minimum is unique and the scan order —
    way order here, set-dict insertion order in the object array —
    cannot change the outcome.
    """
    best = -1
    best_lru = 0
    best_inv = -1
    best_inv_lru = 0
    for slot in range(base, base + assoc):
        if not c_used[slot] or c_pinned[slot]:
            continue
        lru = c_lru[slot]
        if c_state[slot] == inv_code:
            if best_inv < 0 or lru < best_inv_lru:
                best_inv = slot
                best_inv_lru = lru
        elif best < 0 or lru < best_lru:
            best = slot
            best_lru = lru
    return best_inv if best_inv >= 0 else best
