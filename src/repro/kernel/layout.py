"""Flat parallel-array tag storage for the flat protocol kernel.

:class:`FlatTagArray` stores what :class:`~repro.mem.cache_array.CacheArray`
stores — one set-associative tag array of per-block coherence state — as
parallel columns indexed by *slot* (``set_index * assoc + way``) instead
of one ``CacheLine`` object per block:

====================  =====================================================
column                contents
====================  =====================================================
``c_used``            way occupancy bit (free ways keep their last fields)
``c_addr``            block base address
``c_state``           integer state code (:mod:`repro.kernel.hot`)
``c_exp``             lease expiration timestamp
``c_ver``             write version (RCC L2)
``c_lru``             LRU tick (shared global counter with ``CacheArray``)
``c_pinned``          ineligible for eviction (transient with traffic out)
``c_dirty``           write-back L2 dirty bit
``c_value``           opaque data token (SC checking)
``c_sharers``         MESI sharer set, lazily created (None when empty)
``c_meta``            protocol-private dict, lazily created (None if unused)
====================  =====================================================

The columns are plain Python lists, deliberately: under CPython,
``array('q')``/numpy scalars must box on every element read, which
measured *slower* than list access on the simulator's access pattern —
the flat win comes from replacing attribute dereferences and per-line
allocation with indexed loads, and lists are also what mypyc compiles to
unboxed C array ops in the optional compiled build.

Hot handler code indexes the columns directly via ``_tag`` (block ->
slot). Cold paths — parent-class handlers the flat controllers do not
override, the lease policies, eviction callbacks, tests — go through
:class:`FlatLineView`, a per-slot handle with the exact ``CacheLine``
attribute surface, exposed through the ``CacheArray``-compatible API
(``_map``/``lookup``/``insert``/``lines``/...). When a slot is freed —
``remove``, eviction, or ``clear`` — its view is *detached*: repointed
in place at a one-line copy of the columns, and a fresh view installed
for the slot. Every reference held to the departed line therefore keeps
reading its final fields, exactly the stale-``CacheLine`` aliasing the
object kernel gives (eviction callbacks and the MESI recall tests rely
on it); only the free path pays the snapshot allocation.

Determinism: LRU ticks come from the same global ``itertools.count`` as
``CacheArray`` and are consumed at exactly the same sequence points
(line creation and ``touch``), so victim selection is bit-identical
between kernels (see ``pick_victim`` in :mod:`repro.kernel.hot`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.kernel import hot
from repro.mem.cache_array import _lru_ticks


class FlatLineView:
    """``CacheLine``-shaped handle over one slot of a :class:`FlatTagArray`."""

    __slots__ = ("_arr", "_slot")

    def __init__(self, arr: "FlatTagArray", slot: int):
        self._arr = arr
        self._slot = slot

    # -- identity ------------------------------------------------------
    @property
    def addr(self) -> int:
        return self._arr.c_addr[self._slot]

    @property
    def state(self) -> Any:
        return self._arr.decode[self._arr.c_state[self._slot]]

    @state.setter
    def state(self, value: Any) -> None:
        self._arr.c_state[self._slot] = self._arr.encode[value]

    # -- timestamps ----------------------------------------------------
    @property
    def exp(self) -> int:
        return self._arr.c_exp[self._slot]

    @exp.setter
    def exp(self, value: int) -> None:
        self._arr.c_exp[self._slot] = value

    @property
    def ver(self) -> int:
        return self._arr.c_ver[self._slot]

    @ver.setter
    def ver(self, value: int) -> None:
        self._arr.c_ver[self._slot] = value

    # -- flags / data --------------------------------------------------
    @property
    def dirty(self) -> bool:
        return self._arr.c_dirty[self._slot]

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._arr.c_dirty[self._slot] = value

    @property
    def pinned(self) -> bool:
        return self._arr.c_pinned[self._slot]

    @pinned.setter
    def pinned(self, value: bool) -> None:
        self._arr.c_pinned[self._slot] = value

    @property
    def value(self) -> Any:
        return self._arr.c_value[self._slot]

    @value.setter
    def value(self, value: Any) -> None:
        self._arr.c_value[self._slot] = value

    @property
    def sharers(self) -> set:
        s = self._arr.c_sharers[self._slot]
        if s is None:
            s = set()
            self._arr.c_sharers[self._slot] = s
        return s

    @sharers.setter
    def sharers(self, value: set) -> None:
        self._arr.c_sharers[self._slot] = value

    @property
    def meta(self) -> dict:
        m = self._arr.c_meta[self._slot]
        if m is None:
            m = {}
            self._arr.c_meta[self._slot] = m
        return m

    @meta.setter
    def meta(self, value: dict) -> None:
        self._arr.c_meta[self._slot] = value

    @property
    def _lru(self) -> int:
        return self._arr.c_lru[self._slot]

    @_lru.setter
    def _lru(self, value: int) -> None:
        self._arr.c_lru[self._slot] = value

    def touch(self) -> None:
        self._arr.c_lru[self._slot] = next(_lru_ticks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlatLine 0x{self.addr:x} {self.state} ver={self.ver} "
                f"exp={self.exp}{' dirty' if self.dirty else ''}>")


class _DetachedColumns:
    """One-line column holder a view is repointed at when its slot is
    freed. The detached view keeps the full attribute surface (reads and
    writes) over the departed line's final fields."""

    __slots__ = ("decode", "encode", "c_addr", "c_state", "c_exp", "c_ver",
                 "c_lru", "c_pinned", "c_dirty", "c_value", "c_sharers",
                 "c_meta")


class _ViewMap:
    """Read-only ``CacheArray._map``-shaped facade: block -> line view."""

    __slots__ = ("_tag", "_views")

    def __init__(self, tag: dict, views: List[FlatLineView]):
        self._tag = tag
        self._views = views

    def get(self, block: int, default: Any = None) -> Any:
        slot = self._tag.get(block)
        return self._views[slot] if slot is not None else default

    def __getitem__(self, block: int) -> FlatLineView:
        return self._views[self._tag[block]]

    def __contains__(self, block: int) -> bool:
        return block in self._tag

    def __len__(self) -> int:
        return len(self._tag)

    def keys(self):
        return self._tag.keys()

    def values(self) -> Iterator[FlatLineView]:
        views = self._views
        return (views[s] for s in self._tag.values())


class FlatTagArray:
    """Drop-in ``CacheArray`` replacement backed by parallel columns.

    Generic over the protocol's state enum: codes are the enum's
    definition order (matching the constants in :mod:`repro.kernel.hot`
    for the shipped L1/L2 enums — pinned by ``tests/test_kernel_tables``).
    """

    def __init__(self, cfg: CacheConfig, invalid_state: Any):
        cfg.validate()
        self.cfg = cfg
        self.invalid_state = invalid_state
        enum_cls = type(invalid_state)
        #: code -> enum member (definition order).
        self.decode = tuple(enum_cls)
        #: enum member -> code.
        self.encode = {m: i for i, m in enumerate(self.decode)}
        #: table index for "no tag entry" (one past the last state).
        self.state_none = len(self.decode)
        self.inv_code = self.encode[invalid_state]
        self.n_sets = cfg.n_sets
        self.assoc = cfg.assoc
        self._block_shift = cfg.block_bytes.bit_length() - 1
        n = self.n_sets * self.assoc
        self.n_slots = n
        self.c_used: List[bool] = [False] * n
        self.c_addr: List[int] = [-1] * n
        self.c_state: List[int] = [self.inv_code] * n
        self.c_exp: List[int] = [0] * n
        self.c_ver: List[int] = [0] * n
        self.c_lru: List[int] = [0] * n
        self.c_pinned: List[bool] = [False] * n
        self.c_dirty: List[bool] = [False] * n
        self.c_value: List[Any] = [None] * n
        self.c_sharers: List[Optional[set]] = [None] * n
        self.c_meta: List[Optional[dict]] = [None] * n
        #: block -> slot; the hot-path index.
        self._tag: dict = {}
        self._views: List[FlatLineView] = [FlatLineView(self, s)
                                           for s in range(n)]
        #: ``CacheArray._map``-compatible facade for shared cold paths.
        self._map = _ViewMap(self._tag, self._views)

    # ------------------------------------------------------------------
    def set_index(self, addr: int) -> int:
        return (addr >> self._block_shift) % self.n_sets

    def block_of(self, addr: int) -> int:
        return (addr >> self._block_shift) << self._block_shift

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[FlatLineView]:
        """Return the view holding ``addr`` (any state), or None."""
        slot = self._tag.get((addr >> self._block_shift) << self._block_shift)
        return self._views[slot] if slot is not None else None

    def insert(self, addr: int, state: Any,
               evict_cb: Optional[Callable[[FlatLineView], None]] = None
               ) -> FlatLineView:
        """``CacheArray.insert`` semantics; returns the line's view."""
        base = (addr >> self._block_shift) << self._block_shift
        slot = self.insert_slot(base, self.encode[state], evict_cb)
        return self._views[slot]

    def insert_slot(self, block: int, state_code: int,
                    evict_cb: Optional[Callable[[FlatLineView], None]] = None
                    ) -> int:
        """Hot-path insert: block-aligned address + integer state code.

        Matches ``CacheArray.insert`` step for step, including LRU-tick
        consumption points: an existing line is re-stated and touched; a
        new line picks a free way, else evicts the LRU victim (callback
        sees the victim's view before the slot is reused), and the fill
        consumes one tick exactly where ``CacheLine.__init__`` does.
        """
        tag = self._tag
        slot = tag.get(block)
        c_state = self.c_state
        if slot is not None:
            c_state[slot] = state_code
            self.c_lru[slot] = next(_lru_ticks)
            return slot
        base = ((block >> self._block_shift) % self.n_sets) * self.assoc
        c_used = self.c_used
        slot = hot.pick_slot(c_used, c_state, self.c_lru, self.c_pinned,
                             base, self.assoc, self.inv_code)
        if slot < 0:
            raise SimulationError(
                f"no evictable line in set {self.set_index(block)} "
                f"(all {self.assoc} ways pinned)"
            )
        if c_used[slot]:
            victim_block = self.c_addr[slot]
            victim = self._detach(slot)
            if evict_cb is not None:
                evict_cb(victim)
            del tag[victim_block]
        c_used[slot] = True
        self.c_addr[slot] = block
        c_state[slot] = state_code
        self.c_exp[slot] = 0
        self.c_ver[slot] = 0
        self.c_dirty[slot] = False
        self.c_value[slot] = None
        self.c_pinned[slot] = False
        self.c_sharers[slot] = None
        self.c_meta[slot] = None
        self.c_lru[slot] = next(_lru_ticks)
        tag[block] = slot
        return slot

    def can_allocate(self, addr: int) -> bool:
        """True if a line for ``addr`` exists or a victim is available."""
        blk = addr >> self._block_shift
        if (blk << self._block_shift) in self._tag:
            return True
        base = (blk % self.n_sets) * self.assoc
        return hot.can_fill(self.c_used, self.c_pinned, base, self.assoc)

    def _detach(self, slot: int) -> FlatLineView:
        """Free ``slot``: snapshot its columns into the outstanding view
        (so stale references keep the departed line's fields, like a
        stale ``CacheLine``) and install a fresh view for the slot."""
        view = self._views[slot]
        d = _DetachedColumns()
        d.decode = self.decode
        d.encode = self.encode
        d.c_addr = [self.c_addr[slot]]
        d.c_state = [self.c_state[slot]]
        d.c_exp = [self.c_exp[slot]]
        d.c_ver = [self.c_ver[slot]]
        d.c_lru = [self.c_lru[slot]]
        d.c_pinned = [self.c_pinned[slot]]
        d.c_dirty = [self.c_dirty[slot]]
        d.c_value = [self.c_value[slot]]
        d.c_sharers = [self.c_sharers[slot]]
        d.c_meta = [self.c_meta[slot]]
        view._arr = d
        view._slot = 0
        self._views[slot] = FlatLineView(self, slot)
        self.c_used[slot] = False
        return view

    def remove(self, addr: int) -> Optional[FlatLineView]:
        base = (addr >> self._block_shift) << self._block_shift
        slot = self._tag.pop(base, None)
        if slot is None:
            return None
        return self._detach(slot)

    def set_lines(self, addr: int) -> List[FlatLineView]:
        """All occupied views in the set that ``addr`` maps to."""
        base = self.set_index(addr) * self.assoc
        c_used = self.c_used
        return [self._views[s] for s in range(base, base + self.assoc)
                if c_used[s]]

    # ------------------------------------------------------------------
    def lines(self) -> Iterator[FlatLineView]:
        c_used = self.c_used
        views = self._views
        for slot in range(self.n_slots):
            if c_used[slot]:
                yield views[slot]

    def occupancy(self) -> int:
        return len(self._tag)

    def clear(self) -> None:
        """Drop every line (rollover flash-clear)."""
        for slot in list(self._tag.values()):
            self._detach(slot)
        self._tag.clear()
