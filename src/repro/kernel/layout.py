"""Flat parallel-array tag storage for the flat protocol kernel.

:class:`FlatTagArray` stores what :class:`~repro.mem.cache_array.CacheArray`
stores — one set-associative tag array of per-block coherence state — as
parallel columns indexed by *slot* (``set_index * assoc + way``) instead
of one ``CacheLine`` object per block:

====================  =====================================================
column                contents
====================  =====================================================
``c_used``            way occupancy bit (free ways keep their last fields)
``c_addr``            block base address
``c_state``           integer state code (:mod:`repro.kernel.hot`)
``c_exp``             lease expiration timestamp
``c_ver``             write version (RCC L2)
``c_lru``             LRU tick (shared global counter with ``CacheArray``)
``c_pinned``          ineligible for eviction (transient with traffic out)
``c_dirty``           write-back L2 dirty bit
``c_value``           opaque data token (SC checking)
``c_sharers``         MESI sharer set, lazily created (None when empty)
``c_meta``            protocol-private dict, lazily created (None if unused)
====================  =====================================================

The columns are plain Python lists, deliberately: under CPython,
``array('q')``/numpy scalars must box on every element read, which
measured *slower* than list access on the simulator's access pattern —
the flat win comes from replacing attribute dereferences and per-line
allocation with indexed loads, and lists are also what mypyc compiles to
unboxed C array ops in the optional compiled build.

Hot handler code indexes the columns directly via ``_tag`` (block ->
slot). Cold paths — parent-class handlers the flat controllers do not
override, the lease policies, eviction callbacks, tests — go through
:class:`FlatLineView`, a per-slot handle with the exact ``CacheLine``
attribute surface, exposed through the ``CacheArray``-compatible API
(``_map``/``lookup``/``insert``/``lines``/...). When a slot is freed —
``remove``, eviction, or ``clear`` — its view is *detached*: repointed
in place at a one-line copy of the columns, and a fresh view installed
for the slot. Every reference held to the departed line therefore keeps
reading its final fields, exactly the stale-``CacheLine`` aliasing the
object kernel gives (eviction callbacks and the MESI recall tests rely
on it); only the free path pays the snapshot allocation.

Determinism: LRU ticks come from the same global clock box as
``CacheArray`` and are consumed at exactly the same sequence points
(line creation and ``touch``), so victim selection is bit-identical
between kernels (see ``pick_victim`` in :mod:`repro.kernel.hot`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.kernel import hot
from repro.mem.cache_array import _lru_clock, _next_lru


class FlatLineView:
    """``CacheLine``-shaped handle over one slot of a :class:`FlatTagArray`."""

    __slots__ = ("_arr", "_slot")

    def __init__(self, arr: "FlatTagArray", slot: int):
        self._arr = arr
        self._slot = slot

    # -- identity ------------------------------------------------------
    @property
    def addr(self) -> int:
        return self._arr.c_addr[self._slot]

    @property
    def state(self) -> Any:
        return self._arr.decode[self._arr.c_state[self._slot]]

    @state.setter
    def state(self, value: Any) -> None:
        self._arr.c_state[self._slot] = self._arr.encode[value]

    # -- timestamps ----------------------------------------------------
    @property
    def exp(self) -> int:
        return self._arr.c_exp[self._slot]

    @exp.setter
    def exp(self, value: int) -> None:
        self._arr.c_exp[self._slot] = value

    @property
    def ver(self) -> int:
        return self._arr.c_ver[self._slot]

    @ver.setter
    def ver(self, value: int) -> None:
        self._arr.c_ver[self._slot] = value

    # -- flags / data --------------------------------------------------
    @property
    def dirty(self) -> bool:
        return self._arr.c_dirty[self._slot]

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._arr.c_dirty[self._slot] = value

    @property
    def pinned(self) -> bool:
        return self._arr.c_pinned[self._slot]

    @pinned.setter
    def pinned(self, value: bool) -> None:
        self._arr.c_pinned[self._slot] = value

    @property
    def value(self) -> Any:
        return self._arr.c_value[self._slot]

    @value.setter
    def value(self, value: Any) -> None:
        self._arr.c_value[self._slot] = value

    @property
    def sharers(self) -> set:
        s = self._arr.c_sharers[self._slot]
        if s is None:
            s = set()
            self._arr.c_sharers[self._slot] = s
        return s

    @sharers.setter
    def sharers(self, value: set) -> None:
        self._arr.c_sharers[self._slot] = value

    @property
    def meta(self) -> dict:
        m = self._arr.c_meta[self._slot]
        if m is None:
            m = {}
            self._arr.c_meta[self._slot] = m
        return m

    @meta.setter
    def meta(self, value: dict) -> None:
        self._arr.c_meta[self._slot] = value

    @property
    def _lru(self) -> int:
        return self._arr.c_lru[self._slot]

    @_lru.setter
    def _lru(self, value: int) -> None:
        self._arr.c_lru[self._slot] = value

    def touch(self) -> None:
        self._arr.c_lru[self._slot] = _next_lru()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlatLine 0x{self.addr:x} {self.state} ver={self.ver} "
                f"exp={self.exp}{' dirty' if self.dirty else ''}>")


class _DetachedColumns:
    """One-line column holder a view is repointed at when its slot is
    freed. The detached view keeps the full attribute surface (reads and
    writes) over the departed line's final fields."""

    __slots__ = ("decode", "encode", "c_addr", "c_state", "c_exp", "c_ver",
                 "c_lru", "c_pinned", "c_dirty", "c_value", "c_sharers",
                 "c_meta")


class _ViewMap:
    """Read-only ``CacheArray._map``-shaped facade: block -> line view."""

    __slots__ = ("_tag", "_views")

    def __init__(self, tag: dict, views: List[FlatLineView]):
        self._tag = tag
        self._views = views

    def get(self, block: int, default: Any = None) -> Any:
        slot = self._tag.get(block)
        return self._views[slot] if slot is not None else default

    def __getitem__(self, block: int) -> FlatLineView:
        return self._views[self._tag[block]]

    def __contains__(self, block: int) -> bool:
        return block in self._tag

    def __len__(self) -> int:
        return len(self._tag)

    def keys(self):
        return self._tag.keys()

    def values(self) -> Iterator[FlatLineView]:
        views = self._views
        return (views[s] for s in self._tag.values())


class FlatTagArray:
    """Drop-in ``CacheArray`` replacement backed by parallel columns.

    Generic over the protocol's state enum: codes are the enum's
    definition order (matching the constants in :mod:`repro.kernel.hot`
    for the shipped L1/L2 enums — pinned by ``tests/test_kernel_tables``).
    """

    def __init__(self, cfg: CacheConfig, invalid_state: Any):
        cfg.validate()
        self.cfg = cfg
        self.invalid_state = invalid_state
        enum_cls = type(invalid_state)
        #: code -> enum member (definition order).
        self.decode = tuple(enum_cls)
        #: enum member -> code.
        self.encode = {m: i for i, m in enumerate(self.decode)}
        #: table index for "no tag entry" (one past the last state).
        self.state_none = len(self.decode)
        self.inv_code = self.encode[invalid_state]
        self.n_sets = cfg.n_sets
        self.assoc = cfg.assoc
        self._block_shift = cfg.block_bytes.bit_length() - 1
        n = self.n_sets * self.assoc
        self.n_slots = n
        self.c_used: List[bool] = [False] * n
        self.c_addr: List[int] = [-1] * n
        self.c_state: List[int] = [self.inv_code] * n
        self.c_exp: List[int] = [0] * n
        self.c_ver: List[int] = [0] * n
        self.c_lru: List[int] = [0] * n
        self.c_pinned: List[bool] = [False] * n
        self.c_dirty: List[bool] = [False] * n
        self.c_value: List[Any] = [None] * n
        self.c_sharers: List[Optional[set]] = [None] * n
        self.c_meta: List[Optional[dict]] = [None] * n
        #: block -> slot; the hot-path index.
        self._tag: dict = {}
        self._views: List[FlatLineView] = [FlatLineView(self, s)
                                           for s in range(n)]
        #: ``CacheArray._map``-compatible facade for shared cold paths.
        self._map = _ViewMap(self._tag, self._views)

    # ------------------------------------------------------------------
    def set_index(self, addr: int) -> int:
        return (addr >> self._block_shift) % self.n_sets

    def block_of(self, addr: int) -> int:
        return (addr >> self._block_shift) << self._block_shift

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[FlatLineView]:
        """Return the view holding ``addr`` (any state), or None."""
        slot = self._tag.get((addr >> self._block_shift) << self._block_shift)
        return self._views[slot] if slot is not None else None

    def insert(self, addr: int, state: Any,
               evict_cb: Optional[Callable[[FlatLineView], None]] = None
               ) -> FlatLineView:
        """``CacheArray.insert`` semantics; returns the line's view."""
        base = (addr >> self._block_shift) << self._block_shift
        slot = self.insert_slot(base, self.encode[state], evict_cb)
        return self._views[slot]

    def insert_slot(self, block: int, state_code: int,
                    evict_cb: Optional[Callable[[FlatLineView], None]] = None
                    ) -> int:
        """Hot-path insert: block-aligned address + integer state code.

        Matches ``CacheArray.insert`` step for step, including LRU-tick
        consumption points: an existing line is re-stated and touched; a
        new line picks a free way, else evicts the LRU victim (callback
        sees the victim's view before the slot is reused), and the fill
        consumes one tick exactly where ``CacheLine.__init__`` does.
        """
        tag = self._tag
        slot = tag.get(block)
        c_state = self.c_state
        if slot is not None:
            c_state[slot] = state_code
            self.c_lru[slot] = _next_lru()
            return slot
        base = ((block >> self._block_shift) % self.n_sets) * self.assoc
        c_used = self.c_used
        slot = hot.pick_slot(c_used, c_state, self.c_lru, self.c_pinned,
                             base, self.assoc, self.inv_code)
        if slot < 0:
            raise SimulationError(
                f"no evictable line in set {self.set_index(block)} "
                f"(all {self.assoc} ways pinned)"
            )
        if c_used[slot]:
            victim_block = self.c_addr[slot]
            victim = self._detach(slot)
            if evict_cb is not None:
                evict_cb(victim)
            del tag[victim_block]
        hot.fill_slot(tag, c_used, self.c_addr, c_state, self.c_exp,
                      self.c_ver, self.c_dirty, self.c_value,
                      self.c_pinned, self.c_sharers, self.c_meta,
                      self.c_lru, _lru_clock, block, slot, state_code)
        return slot

    def can_allocate(self, addr: int) -> bool:
        """True if a line for ``addr`` exists or a victim is available."""
        blk = addr >> self._block_shift
        if (blk << self._block_shift) in self._tag:
            return True
        base = (blk % self.n_sets) * self.assoc
        return hot.can_fill(self.c_used, self.c_pinned, base, self.assoc)

    def _detach(self, slot: int) -> FlatLineView:
        """Free ``slot``: snapshot its columns into the outstanding view
        (so stale references keep the departed line's fields, like a
        stale ``CacheLine``) and install a fresh view for the slot."""
        view = self._views[slot]
        d = _DetachedColumns()
        d.decode = self.decode
        d.encode = self.encode
        d.c_addr = [self.c_addr[slot]]
        d.c_state = [self.c_state[slot]]
        d.c_exp = [self.c_exp[slot]]
        d.c_ver = [self.c_ver[slot]]
        d.c_lru = [self.c_lru[slot]]
        d.c_pinned = [self.c_pinned[slot]]
        d.c_dirty = [self.c_dirty[slot]]
        d.c_value = [self.c_value[slot]]
        d.c_sharers = [self.c_sharers[slot]]
        d.c_meta = [self.c_meta[slot]]
        view._arr = d
        view._slot = 0
        self._views[slot] = FlatLineView(self, slot)
        self.c_used[slot] = False
        return view

    def remove(self, addr: int) -> Optional[FlatLineView]:
        base = (addr >> self._block_shift) << self._block_shift
        slot = self._tag.pop(base, None)
        if slot is None:
            return None
        return self._detach(slot)

    def set_lines(self, addr: int) -> List[FlatLineView]:
        """All occupied views in the set that ``addr`` maps to."""
        base = self.set_index(addr) * self.assoc
        c_used = self.c_used
        return [self._views[s] for s in range(base, base + self.assoc)
                if c_used[s]]

    # ------------------------------------------------------------------
    def lines(self) -> Iterator[FlatLineView]:
        c_used = self.c_used
        views = self._views
        for slot in range(self.n_slots):
            if c_used[slot]:
                yield views[slot]

    def occupancy(self) -> int:
        return len(self._tag)

    def clear(self) -> None:
        """Drop every line (rollover flash-clear)."""
        for slot in list(self._tag.values()):
            self._detach(slot)
        self._tag.clear()


class FlatMSHREntryView:
    """``MSHREntry``-shaped handle over one slot of a :class:`FlatMSHRFile`.

    Views are persistent per slot (no allocation on the hot path). Unlike
    cache-line views there is no detach-on-release: an audit of every
    handler shows no entry reference is held across a ``release``, so the
    stale-read protection would buy nothing.
    """

    __slots__ = ("_m", "_slot")

    def __init__(self, m: "FlatMSHRFile", slot: int):
        self._m = m
        self._slot = slot

    @property
    def addr(self) -> int:
        return self._m.m_addr[self._slot]

    @property
    def waiting_loads(self) -> list:
        return self._m.m_loads[self._slot]

    @waiting_loads.setter
    def waiting_loads(self, value: list) -> None:
        self._m.m_loads[self._slot] = value

    @property
    def pending_stores(self) -> list:
        return self._m.m_stores[self._slot]

    @pending_stores.setter
    def pending_stores(self, value: list) -> None:
        self._m.m_stores[self._slot] = value

    @property
    def lastrd(self) -> int:
        return self._m.m_lastrd[self._slot]

    @lastrd.setter
    def lastrd(self, value: int) -> None:
        self._m.m_lastrd[self._slot] = value

    @property
    def lastwr(self) -> int:
        return self._m.m_lastwr[self._slot]

    @lastwr.setter
    def lastwr(self, value: int) -> None:
        self._m.m_lastwr[self._slot] = value

    @property
    def has_read(self) -> bool:
        return self._m.m_has_read[self._slot]

    @has_read.setter
    def has_read(self, value: bool) -> None:
        self._m.m_has_read[self._slot] = value

    @property
    def has_write(self) -> bool:
        return self._m.m_has_write[self._slot]

    @has_write.setter
    def has_write(self, value: bool) -> None:
        self._m.m_has_write[self._slot] = value

    @property
    def store_value(self) -> Any:
        return self._m.m_store_value[self._slot]

    @store_value.setter
    def store_value(self, value: Any) -> None:
        self._m.m_store_value[self._slot] = value

    @property
    def meta(self) -> dict:
        m = self._m.m_meta[self._slot]
        if m is None:
            m = {}
            self._m.m_meta[self._slot] = m
        return m

    @meta.setter
    def meta(self, value: dict) -> None:
        self._m.m_meta[self._slot] = value

    @property
    def empty(self) -> bool:
        s = self._slot
        return not self._m.m_loads[s] and not self._m.m_stores[s]

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MSHR 0x{self.addr:x} loads={len(self.waiting_loads)} "
                f"stores={len(self.pending_stores)}>")


class _EntryMap:
    """Read-only ``MSHRFile._entries``-shaped facade: block -> entry view."""

    __slots__ = ("_tag", "_views")

    def __init__(self, tag: dict, views: List[FlatMSHREntryView]):
        self._tag = tag
        self._views = views

    def get(self, block: int, default: Any = None) -> Any:
        slot = self._tag.get(block)
        return self._views[slot] if slot is not None else default

    def __getitem__(self, block: int) -> FlatMSHREntryView:
        return self._views[self._tag[block]]

    def __contains__(self, block: int) -> bool:
        return block in self._tag

    def __len__(self) -> int:
        return len(self._tag)

    def keys(self):
        return self._tag.keys()

    def values(self) -> Iterator[FlatMSHREntryView]:
        views = self._views
        return (views[s] for s in self._tag.values())


class FlatMSHRFile:
    """Drop-in ``MSHRFile`` replacement backed by parallel columns.

    Slot allocation is a LIFO free list shared with the hot kernel
    (``hot._l1_mshr_alloc`` / ``hot._l2_mshr_alloc`` pop the same list),
    so interleaved hot/cold allocations stay consistent. ``_tag`` mirrors
    ``MSHRFile._entries``' dict insertion order exactly (``entries()``
    iteration order is observable via rollover resets).

    ``gets_out`` lives in the dedicated ``m_gets_out`` column rather
    than the per-entry meta dict: every reader/writer of that flag in
    the flat controllers is overridden, and a boolean column read beats
    a lazy dict probe on the per-load hot path.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise SimulationError("MSHR capacity must be positive")
        self.capacity = capacity
        n = capacity
        self.m_addr: List[int] = [-1] * n
        self.m_lastrd: List[int] = [0] * n
        self.m_lastwr: List[int] = [0] * n
        self.m_has_read: List[bool] = [False] * n
        self.m_has_write: List[bool] = [False] * n
        self.m_gets_out: List[bool] = [False] * n
        self.m_store_value: List[Any] = [None] * n
        self.m_loads: List[list] = [[] for _ in range(n)]
        self.m_stores: List[list] = [[] for _ in range(n)]
        self.m_meta: List[Optional[dict]] = [None] * n
        #: block -> slot; the hot-path index.
        self._tag: dict = {}
        #: Free slots, popped LIFO (slot 0 first from a fresh file).
        self._free: List[int] = list(range(n - 1, -1, -1))
        #: Peak-occupancy box (shared with the hot allocators).
        self._peak: List[int] = [0]
        self._views: List[FlatMSHREntryView] = [
            FlatMSHREntryView(self, s) for s in range(n)]
        self._entries = _EntryMap(self._tag, self._views)

    # ------------------------------------------------------------------
    def get(self, addr: int) -> Optional[FlatMSHREntryView]:
        slot = self._tag.get(addr)
        return self._views[slot] if slot is not None else None

    def has_free(self) -> bool:
        return len(self._tag) < self.capacity

    def allocate(self, addr: int) -> FlatMSHREntryView:
        """Get-or-create the entry for ``addr``; caller must have checked
        :meth:`has_free` when creating new entries."""
        slot = self._tag.get(addr)
        if slot is None:
            if not self.has_free():
                raise SimulationError("MSHR allocation with no free entry")
            slot = self._free.pop()
            self.m_addr[slot] = addr
            self.m_lastrd[slot] = 0
            self.m_lastwr[slot] = 0
            self.m_has_read[slot] = False
            self.m_has_write[slot] = False
            self.m_gets_out[slot] = False
            self.m_store_value[slot] = None
            self.m_loads[slot] = []
            self.m_stores[slot] = []
            self.m_meta[slot] = None
            self._tag[addr] = slot
            n = len(self._tag)
            if n > self._peak[0]:
                self._peak[0] = n
        return self._views[slot]

    def release(self, addr: int) -> None:
        slot = self._tag.get(addr)
        if slot is None:
            raise SimulationError(f"releasing absent MSHR entry 0x{addr:x}")
        if self.m_loads[slot] or self.m_stores[slot]:
            # Refuse *without* dropping the entry: the outstanding requests
            # it tracks must stay reachable for whoever handles the error.
            raise SimulationError(
                f"releasing non-empty MSHR entry 0x{addr:x}: "
                f"{self._views[slot]!r}"
            )
        del self._tag[addr]
        # Drop object references eagerly so a recycled slot can never leak
        # a previous block's store token or meta dict into a fresh entry.
        self.m_store_value[slot] = None
        self.m_meta[slot] = None
        self._free.append(slot)

    def release_if_empty(self, addr: int) -> bool:
        slot = self._tag.get(addr)
        if slot is not None and not self.m_loads[slot] \
                and not self.m_stores[slot]:
            del self._tag[addr]
            self.m_store_value[slot] = None
            self.m_meta[slot] = None
            self._free.append(slot)
            return True
        return False

    @property
    def peak_occupancy(self) -> int:
        return self._peak[0]

    def __len__(self) -> int:
        return len(self._tag)

    def __contains__(self, addr: int) -> bool:
        return addr in self._tag

    def entries(self):
        views = self._views
        return [views[s] for s in self._tag.values()]

    def clear(self) -> None:
        self._tag.clear()
        n = self.capacity
        self._free = list(range(n - 1, -1, -1))
        self.m_store_value = [None] * n
        self.m_meta = [None] * n
        self.m_loads = [[] for _ in range(n)]
        self.m_stores = [[] for _ in range(n)]


# ----------------------------------------------------------------------
# Hot-kernel context builders (layouts pinned by hot.CTX1_* / hot.CTX2_*)
# ----------------------------------------------------------------------

def build_l1_ctx(cache: FlatTagArray, mshr: FlatMSHRFile,
                 stats_c: List[int]) -> list:
    """One-time context list for the fused L1 handlers."""
    return [
        cache._tag, cache.c_state, cache.c_exp, cache.c_lru,
        cache.c_pinned, cache.c_used, cache.c_value,
        mshr._tag, mshr._free, mshr.m_loads, mshr.m_stores,
        mshr.m_gets_out, mshr._peak,
        stats_c, _lru_clock,
        mshr.capacity, cache.assoc, cache.n_sets, cache._block_shift,
    ]


def build_l2_ctx(cache: FlatTagArray, mshr: FlatMSHRFile,
                 stats_c: List[int], pc_table: dict, pol: int,
                 pol_enabled: bool, lease_min: int, lease_max: int,
                 lease_default: int, renew_enabled: bool) -> list:
    """One-time context list for the fused L2 handlers. ``pc_table`` is
    the pc-pred policy's *instance* dict (shared, so the object path and
    the hot path observe one table)."""
    return [
        cache._tag, cache.c_state, cache.c_exp, cache.c_ver, cache.c_lru,
        cache.c_pinned, cache.c_used, cache.c_value, cache.c_dirty,
        cache.c_meta, cache.c_sharers,
        mshr._tag, mshr._free, mshr.m_lastrd, mshr.m_lastwr,
        mshr.m_has_read, mshr.m_has_write, mshr.m_store_value,
        mshr.m_loads, mshr.m_stores, mshr.m_meta, mshr._peak,
        stats_c, _lru_clock, pc_table,
        mshr.capacity, cache.assoc, cache.n_sets, cache._block_shift,
        pol, pol_enabled, lease_min, lease_max, lease_default,
        renew_enabled,
    ]
