"""Flat-array protocol kernel: selection and the optional compiled core.

The kernel package re-implements the hot paths of the RCC / RCC-WO / MESI
controllers over flat parallel arrays (:mod:`repro.kernel.layout`) with
integer state encodings and table-driven transitions fused into one
handler call per (controller, event) — lease arithmetic, MSHR merge
bookkeeping, victim+fill included (:mod:`repro.kernel.hot`). The engine
additionally batch-drains callback-only event buckets through
``hot.drain_calls``. The object-based controllers remain the
differential oracle — the flat kernel must be payload-bit-identical to
them, and ``tests/test_kernel_differential.py`` plus the
``tests/golden/flat_kernel_golden.json`` battery enforce it.

Selection
---------
``RCC_FLAT_KERNEL`` (default on) picks the flat controllers at protocol
build time; set it to ``0`` to force the object kernel. Setting
``RCC_LEGACY_ENGINE=1`` also forces the object kernel, so the existing
``repro-perf --compare-legacy`` gate compares the *complete* legacy stack
(heap engine + object controllers) against the complete fast one
(bucketed engine + flat kernel) and asserts identical payloads.

Compiled core
-------------
``repro.kernel.hot`` holds only integers, lists, and tuples so an
optional ahead-of-time build (``tools/build_kernel.py``, mypyc or
Cython) can compile it to a C extension named ``repro.kernel.hot_c``.
The import below prefers the compiled module when present and silently
falls back to the pure-Python one — the extension is never required.
``RCC_KERNEL_COMPILED=0`` skips the compiled module even when built.
"""

from __future__ import annotations

import os

__all__ = [
    "hot",
    "COMPILED",
    "flat_kernel_enabled",
    "kernel_description",
]

if os.environ.get("RCC_KERNEL_COMPILED", "1") not in ("0", "off", "no"):
    try:
        from repro.kernel import hot_c as hot  # type: ignore[no-redef]
        COMPILED = True
    except ImportError:
        from repro.kernel import hot
        COMPILED = False
else:  # explicit opt-out: always interpret the pure-Python core
    from repro.kernel import hot
    COMPILED = False


def flat_kernel_enabled() -> bool:
    """True when protocol builds should use the flat controllers.

    Checked per :func:`repro.coherence.registry.build_protocol` call, so
    flipping the environment between simulations (as the differential
    tests and ``--compare-legacy`` do) takes effect immediately.
    """
    if os.environ.get("RCC_LEGACY_ENGINE"):
        return False
    return os.environ.get("RCC_FLAT_KERNEL", "1") not in ("0", "off", "no")


def kernel_description() -> str:
    """Short label of the kernel the next build would use (for reports)."""
    if not flat_kernel_enabled():
        return "object"
    return "flat+compiled" if COMPILED else "flat"
