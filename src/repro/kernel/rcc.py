"""Flat-kernel RCC / RCC-WO controllers.

Thin wrappers over the fused hot kernel (:mod:`repro.kernel.hot`): each
per-event handler makes ONE call into the compilable subset — table
lookup, action selection, stat bumps, lease arithmetic, MSHR merge
bookkeeping, and column writes all happen inside — then performs only
the object-boundary work the ``R_*`` result code dictates (Message
construction, sanitizer emits, MemOpRecord completion, DRAM callbacks).
Everything observable — message fields and ordering, stat increments,
MSHR bookkeeping, LRU tick consumption, sanitizer events (same
transition points, same ``is not None`` gating) — is preserved exactly;
the golden and differential batteries assert payload bit-identity
against the object kernel.

Cold paths (rollover flush/reset, RENEW fallbacks, DRAM fills, eviction
callbacks) deliberately reuse the parent implementations, which operate
on the flat columns through persistent :class:`FlatLineView` /
:class:`FlatMSHREntryView` handles — one implementation, one behavior.
Per-line lease-policy state lives in the ``c_meta`` dicts under the
object policies' own keys, so the hot policy arithmetic and the
inherited fill paths read and write one copy of state; non-built-in
(registered) policies make the hot kernel return ``R_NEED_LEASE`` and
the grant runs through the policy object instead.
"""

from __future__ import annotations

from heapq import heappush
from typing import Optional

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, \
    MsgKind
from repro.core.lease_policy import AdaptiveLeasePolicy, FixedLeasePolicy, \
    PCPredLeasePolicy
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.rcc_l2 import RCCL2Controller, RETRY_DELAY
from repro.core.rcc_wo import RCCWOL1Controller
from repro.gpu.warp import MemOpRecord, Warp
from repro.kernel import hot
from repro.kernel.layout import FlatMSHRFile, FlatTagArray, build_l1_ctx, \
    build_l2_ctx
from repro.mem.cache_array import _next_lru
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

_L1_V = hot.L1_V
_L1_IV = hot.L1_IV
_L2_V = hot.L2_V
_L2_IV = hot.L2_IV
_L2_IAV = hot.L2_IAV

_R_HIT = hot.R_HIT
_R_STALL = hot.R_STALL
_R_MISS_MERGE = hot.R_MISS_MERGE
_R_MISS_SEND = hot.R_MISS_SEND
_R_MISS_INSERT = hot.R_MISS_INSERT
_R_RETRY = hot.R_RETRY
_R_GRANT_DATA = hot.R_GRANT_DATA
_R_GRANT_RENEW = hot.R_GRANT_RENEW
_R_NEED_LEASE = hot.R_NEED_LEASE
_R_MERGE_RD = hot.R_MERGE_RD
_R_MERGE_WR = hot.R_MERGE_WR
_R_APPLY = hot.R_APPLY
_R_FETCH = hot.R_FETCH
_R_FETCH_WR = hot.R_FETCH_WR
_R_FETCH_AT = hot.R_FETCH_AT


class FlatRCCL1Controller(RCCL1Controller):
    """RCC L1 with flat-array tag state and fused hot-kernel dispatch."""

    def __init__(self, core_id, engine, cfg, noc, amap, rollover):
        super().__init__(core_id, engine, cfg, noc, amap, rollover)
        self.cache = FlatTagArray(cfg.l1, L1State.I)
        self.mshr = FlatMSHRFile(cfg.l1.mshr_entries)
        self._ctx = build_l1_ctx(self.cache, self.mshr, self.stats.c)
        self._out = [0, 0, 0, 0]

    # ------------------------------------------------------------------
    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        return hot.rcc_l1_would_stall(self._ctx, block, self._read_now(),
                                      kind is MemOpKind.LOAD)

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        rnow = self._read_now()
        out = self._out
        r = hot.rcc_l1_load(self._ctx, block, rnow, out)

        if r == _R_HIT:
            # V (or VI) hit within the lease; stats + LRU done in-kernel.
            slot = out[0]
            cache = self.cache
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block, now=rnow,
                           exp=cache.c_exp[slot], view="read",
                           epoch=self.rollover.epoch)
            record.read_value = cache.c_value[slot]
            record.logical_ts = (self.rollover.epoch << self.clock.bits) | rnow
            record.order_key = -1  # L1 hit: never visited the L2
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT
        if r == _R_STALL:
            return AccessOutcome.STALL

        ms = out[0]
        expired = out[1] != 0
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block, now=rnow, expired=expired,
                       view="read", epoch=self.rollover.epoch)
        # Snapshot the read view at issue: the fill satisfies this load only
        # if the granted lease covers the snapshot.
        self.mshr.m_loads[ms].append((record, warp, rnow))
        if r == _R_MISS_MERGE:
            return AccessOutcome.MISS  # merge into the outstanding GETS

        old_exp: Optional[int] = None
        if r == _R_MISS_INSERT:
            slot = self.cache.insert_slot(block, _L1_IV, self._on_evict)
            self.cache.c_pinned[slot] = True
        elif out[2]:  # R_MISS_SEND with a renewable stale copy
            old_exp = out[3]
        self.send_to_l2(
            MsgKind.GETS, block, now=rnow, exp=old_exp,
            meta={"expired": expired, "epoch": self.rollover.epoch,
                  "pc": record.prog_index},
        )
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord,
                         warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        is_atomic = record.kind is MemOpKind.ATOMIC
        out = self._out
        r = hot.rcc_l1_store(self._ctx, block, is_atomic, out)
        if r == _R_STALL:
            return AccessOutcome.STALL
        cache = self.cache
        if self.sanitizer is not None:
            vslot = cache._tag.get(block)
            self._emit(EV.L1_STORE_ISSUE, block, now=self._write_now(),
                       view="write", epoch=self.rollover.epoch,
                       atomic=is_atomic, op=record.seq,
                       copy_exp=(cache.c_exp[vslot] if vslot is not None
                                 and cache.c_state[vslot] == _L1_V else None))
        self.mshr.m_stores[out[0]].append((record, warp))
        self.send_to_l2(
            MsgKind.ATOMIC if is_atomic else MsgKind.WRITE, block,
            now=self._write_now(), value=record.value,
            meta={"record": record, "warp": warp,
                  "epoch": self.rollover.epoch},
        )
        return AccessOutcome.MISS

    # ------------------------------------------------------------------
    def _on_data(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        ver = self.rollover.clamp(msg.ver, epoch)
        exp = self.rollover.clamp(msg.exp, epoch)
        self._advance_read(ver)
        entry = self.mshr._entries.get(block)

        if msg.meta.get("atomic"):
            self._advance_write(ver)
            self._complete_store(msg, ver)
            return

        cache = self.cache
        slot = cache._tag.get(block)
        if slot is not None:
            cache.c_state[slot] = _L1_V
            cache.c_exp[slot] = exp
            cache.c_value[slot] = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block, ver=ver, exp=exp,
                       now_after=self._read_now(), view="read",
                       epoch=self.rollover.epoch,
                       installed=slot is not None)
        if entry is not None:
            self._deliver_loads(block, entry, msg.value, ver, exp,
                                msg.meta.get("arrival", -1))

    def _deliver_loads(self, block: int, entry, value, ver: int, exp: int,
                       arrival: int) -> None:
        keep = []
        epoch_bits = self.rollover.epoch << self.clock.bits
        for record, warp, snapshot in entry.waiting_loads:
            if snapshot <= exp:
                record.read_value = value
                record.logical_ts = epoch_bits | (ver if ver > snapshot
                                                  else snapshot)
                record.order_key = arrival
                self.complete(record, warp)
            else:
                keep.append((record, warp, self._read_now()))
        entry.waiting_loads = keep
        mshr = self.mshr
        if keep:
            cache = self.cache
            slot = cache._tag.get(block)
            renewable = slot is not None and cache.c_value[slot] is not None
            mshr.m_gets_out[entry._slot] = True
            self.send_to_l2(
                MsgKind.GETS, block, now=self._read_now(),
                exp=exp if renewable else None,
                meta={"expired": renewable, "epoch": self.rollover.epoch,
                      "pc": keep[0][0].prog_index},
            )
        else:
            mshr.m_gets_out[entry._slot] = False
            self._maybe_release(block)

    def _on_renew(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        self.stats.renews_received += 1
        exp = self.rollover.clamp(msg.exp, epoch)
        if self.sanitizer is not None:
            self._emit(EV.L1_RENEW, block, exp=exp,
                       epoch=self.rollover.epoch)
        cache = self.cache
        slot = cache._tag.get(block)
        if slot is None or cache.c_value[slot] is None:
            entry = self.mshr._entries.get(block)
            if entry is not None and entry.waiting_loads:
                self.send_to_l2(
                    MsgKind.GETS, block, now=self._read_now(), exp=None,
                    meta={"expired": False, "epoch": self.rollover.epoch,
                          "pc": entry.waiting_loads[0][0].prog_index},
                )
                self.mshr.m_gets_out[entry._slot] = True
            return
        cache.c_state[slot] = _L1_V
        cache.c_exp[slot] = exp
        entry = self.mshr._entries.get(block)
        if entry is not None:
            self._deliver_loads(block, entry, cache.c_value[slot], 0, exp,
                                msg.meta.get("arrival", -1))

    def _complete_store(self, msg: Message, ver: int) -> None:
        block = msg.addr
        record: MemOpRecord = msg.meta["record"]
        warp: Warp = msg.meta["warp"]
        entry = self.mshr.get(block)
        if entry is None or (record, warp) not in entry.pending_stores:
            raise self.unhandled("II", msg.kind,
                                 f"no pending store {record!r}")
        entry.pending_stores.remove((record, warp))
        record.logical_ts = (self.rollover.epoch << self.clock.bits) | ver
        record.order_key = msg.meta.get("arrival", -1)
        if record.kind is MemOpKind.ATOMIC:
            record.read_value = msg.value
        self.complete(record, warp)
        cache = self.cache
        slot = cache._tag.get(block)
        if self.sanitizer is not None:
            copy_exp = (cache.c_exp[slot] if slot is not None
                        and cache.c_state[slot] == _L1_V else None)
            self._emit(EV.L1_STORE_ACK, block, ver=ver,
                       now_after=self._write_now(), copy_exp=copy_exp,
                       view="write", op=record.seq,
                       epoch=msg.meta.get("epoch", self.rollover.epoch),
                       cur_epoch=self.rollover.epoch)
        if not entry.pending_stores:
            if (slot is not None and cache.c_state[slot] == _L1_V
                    and not entry.waiting_loads):
                cache.remove(block)
                self.stats.self_invalidations += 1
                if self.sanitizer is not None:
                    self._emit(EV.L1_SELF_INVAL, block,
                               reason="post_store_vi")
        self._maybe_release(block)

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr._entries.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            cache = self.cache
            slot = cache._tag.get(block)
            if slot is not None:
                cache.c_pinned[slot] = False
                if cache.c_state[slot] == _L1_IV:
                    cache.remove(block)


class FlatRCCWOL1Controller(RCCWOL1Controller, FlatRCCL1Controller):
    """Flat RCC-WO L1: split read/write views over the flat hot paths.

    The MRO does all the work: view plumbing (``_read_now`` /
    ``_write_now`` / joins) resolves to :class:`RCCWOL1Controller`, the
    handlers resolve to :class:`FlatRCCL1Controller`.
    """


class FlatRCCL2Controller(RCCL2Controller):
    """RCC L2 bank with flat directory state and fused hot dispatch."""

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing,
                 rollover):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing,
                         rollover)
        self.cache = FlatTagArray(cfg.l2_per_bank, L2State.I)
        self.mshr = FlatMSHRFile(cfg.l2_per_bank.mshr_entries)
        # Exact-type policy detection: registered subclasses fall to
        # P_OTHER and grant through the policy object (R_NEED_LEASE).
        pred = self.predictor
        t = type(pred)
        if t is FixedLeasePolicy:
            pol = hot.P_FIXED
        elif t is AdaptiveLeasePolicy:
            pol = hot.P_ADAPTIVE
        elif t is PCPredLeasePolicy:
            pol = hot.P_PCPRED
        else:
            pol = hot.P_OTHER
        self._pol = pol
        ts = cfg.ts
        self._ctx = build_l2_ctx(
            self.cache, self.mshr, self.stats.c,
            pred.table if pol == hot.P_PCPRED else {},
            pol, ts.predictor_enabled, ts.lease_min, ts.lease_max,
            ts.lease_default, self.renew_enabled)
        self._out = [0, 0, 0, 0, 0]
        self._obox = [None]

    # ------------------------------------------------------------------
    def _projected_ts(self, msg: Message) -> int:
        m = self.dram.mnow
        n = msg.now or 0
        if n > m:
            m = n
        cache = self.cache
        slot = cache._tag.get(msg.addr)
        if slot is not None:
            e = cache.c_exp[slot]
            if e > m:
                m = e
            v = cache.c_ver[slot]
            if v > m:
                m = v
        return m + self._lease_max2

    def _retry(self, msg: Message) -> None:
        # Flat twin of RCCL2Controller._retry: same cached-callback
        # structure and blocking predicate, reading columns instead of a
        # CacheLine (see the parent for the re-arm rationale).
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            tag = self.cache._tag
            c_state = self.cache.c_state
            c_exp = self.cache.c_exp
            c_ver = self.cache.c_ver
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            engine = self.engine
            rollover = self.rollover
            dram = self.dram
            threshold = rollover.threshold
            lease_max2 = self._lease_max2
            n = msg.now or 0
            atomic = msg.kind is MsgKind.ATOMIC

            ring = getattr(engine, "_ring", None)  # None under legacy engine

            def cb() -> None:
                if not self.frozen and not rollover.in_progress:
                    slot = tag.get(block)
                    m = dram.mnow
                    if n > m:
                        m = n
                    if slot is not None:
                        e = c_exp[slot]
                        if e > m:
                            m = e
                        v = c_ver[slot]
                        if v > m:
                            m = v
                    if m + lease_max2 < threshold:
                        if slot is not None:
                            st = c_state[slot]
                            blocked = (st != _L2_V if atomic
                                       else st == _L2_IAV)
                        elif atomic:
                            blocked = len(entries) >= capacity
                        else:
                            blocked = (len(entries) >= capacity
                                       and block not in entries)
                        if blocked:
                            cyc = engine.now + RETRY_DELAY
                            if ring is not None and cyc < engine._horizon:
                                engine._live += 1
                                b = ring[cyc & _RING_MASK]
                                if not b:
                                    heappush(engine._ring_cycles, cyc)
                                b.append(cb)
                            else:
                                engine.schedule_call(cyc, cb)
                            return
                self.on_message(msg)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message, m_now: int,
                 m_exp: Optional[int]) -> None:
        meta = msg.meta
        counted = bool(meta.get("_counted"))
        meta["_counted"] = True
        block = msg.addr
        pc = meta.get("pc")
        out = self._out
        r = hot.rcc_l2_gets(
            self._ctx, block, m_now, m_exp is not None,
            m_exp if m_exp is not None else 0, counted,
            bool(meta.get("expired")), pc is not None,
            pc if pc is not None else 0, msg, out)

        if r == _R_GRANT_DATA or r == _R_GRANT_RENEW:
            # Lease computed and columns updated in-kernel; draw the
            # arrival and send (the arrival counter is untouched by the
            # hot call, so the value matches the object kernel's draw).
            slot = out[0]
            ver = out[1]
            exp = out[2]
            arrival = self.next_arrival()
            renewing = r == _R_GRANT_RENEW
            if self.sanitizer is not None:
                self._emit(EV.L2_RENEW_GRANT if renewing
                           else EV.L2_READ_GRANT,
                           block, ver=ver, exp=exp, m_now=m_now,
                           prev_exp=out[3], lease=out[4],
                           peer=msg.src[1], epoch=self.rollover.epoch)
            if renewing:
                self.send(msg.src, MsgKind.RENEW, block, exp=exp,
                          meta={"epoch": self.rollover.epoch,
                                "arrival": arrival},
                          delay=self.cfg.l2_per_bank.hit_latency)
            else:
                self.send(msg.src, MsgKind.DATA, block, exp=exp,
                          ver=ver, value=self.cache.c_value[slot],
                          meta={"epoch": self.rollover.epoch,
                                "arrival": arrival},
                          delay=self.cfg.l2_per_bank.hit_latency)
            return
        if r == _R_MERGE_RD:
            return
        if r == _R_NEED_LEASE:
            self._grant_lease_flat(msg, out[0], m_now, m_exp)
            return
        if r == _R_RETRY:
            self._retry(msg)
            return
        # R_FETCH: MSHR bookkeeping done; insert the line and fetch.
        slot = self.cache.insert_slot(block, _L2_IV, self._on_evict)
        self.cache.c_pinned[slot] = True
        self.fetch_from_dram(block, self._on_dram_data)

    def _grant_lease_flat(self, msg: Message, slot: int, m_now: int,
                          m_exp: Optional[int]) -> None:
        """Object-path grant for non-built-in lease policies (the hit
        stat was already bumped in-kernel)."""
        cache = self.cache
        view = cache._views[slot]
        pc = msg.meta.get("pc")
        lease = self.predictor.lease_for(view, m_now, pc)
        prev_exp = cache.c_exp[slot]
        ver = cache.c_ver[slot]
        exp = prev_exp
        t = ver + lease
        if t > exp:
            exp = t
        t = m_now + lease
        if t > exp:
            exp = t
        cache.c_exp[slot] = exp
        cache.c_lru[slot] = _next_lru()
        arrival = self.next_arrival()
        renewing = (self.renew_enabled and m_exp is not None
                    and m_exp > ver)
        if m_exp is not None and m_exp <= ver:
            self.predictor.on_expired_miss(view, pc)
        if self.sanitizer is not None:
            self._emit(EV.L2_RENEW_GRANT if renewing else EV.L2_READ_GRANT,
                       msg.addr, ver=ver, exp=exp, m_now=m_now,
                       prev_exp=prev_exp, lease=lease,
                       peer=msg.src[1], epoch=self.rollover.epoch)
        if renewing:
            self.stats.renew_grants += 1
            self.predictor.on_renew(view, pc)
            self.send(msg.src, MsgKind.RENEW, msg.addr, exp=exp,
                      meta={"epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
        else:
            self.send(msg.src, MsgKind.DATA, msg.addr, exp=exp,
                      ver=ver, value=cache.c_value[slot],
                      meta={"epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)

    # ------------------------------------------------------------------
    def _on_write(self, msg: Message, m_now: int) -> None:
        meta = msg.meta
        counted = bool(meta.get("_counted"))
        meta["_counted"] = True
        block = msg.addr
        out = self._out
        r = hot.rcc_l2_write(self._ctx, block, m_now, counted, msg.value,
                             out)

        if r == _R_APPLY:
            arrival = self.next_arrival()
            if self._pol == hot.P_OTHER:
                self.predictor.on_write(self.cache._views[out[0]])
            if self.sanitizer is not None:
                self._emit(EV.L2_WRITE_APPLY, block, ver=out[1],
                           prev_ver=out[2], prev_exp=out[3],
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            self._send_ack(msg, out[1], arrival)
            return
        if r == _R_RETRY:
            self._retry(msg)
            return
        # R_MERGE_WR / R_FETCH_WR: merge bookkeeping done in-kernel; the
        # final version is max(lastwr, mnow) computed *after* any line
        # insertion, because an eviction there bumps mnow.
        if r == _R_FETCH_WR:
            slot = self.cache.insert_slot(block, _L2_IV, self._on_evict)
            self.cache.c_pinned[slot] = True
        lastwr = out[0]
        mnow = self.dram.mnow
        ver = lastwr if lastwr > mnow else mnow
        arrival = self.next_arrival()
        if self.sanitizer is not None:
            self._emit(EV.L2_WRITE_MERGE, block, ver=ver, lastwr=lastwr,
                       mnow=mnow, arrival=arrival,
                       epoch=self.rollover.epoch)
        self._send_ack(msg, ver, arrival)
        if r == _R_FETCH_WR:
            self.fetch_from_dram(block, self._on_dram_data)

    # ------------------------------------------------------------------
    def _on_atomic(self, msg: Message, m_now: int) -> None:
        meta = msg.meta
        counted = bool(meta.get("_counted"))
        meta["_counted"] = True
        block = msg.addr
        out = self._out
        obox = self._obox
        r = hot.rcc_l2_atomic(self._ctx, block, m_now, counted, msg.value,
                              obox, out)

        if r == _R_APPLY:
            arrival = self.next_arrival()
            if self._pol == hot.P_OTHER:
                self.predictor.on_write(self.cache._views[out[0]])
            if self.sanitizer is not None:
                self._emit(EV.L2_ATOMIC_APPLY, block, ver=out[1],
                           prev_ver=out[2], prev_exp=out[3],
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            old_value = obox[0]
            obox[0] = None
            self.send(msg.src, MsgKind.DATA, block, exp=out[3],
                      ver=out[1], value=old_value,
                      meta={"atomic": True,
                            "record": meta.get("record"),
                            "warp": meta.get("warp"),
                            "epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if r == _R_RETRY:  # IV or IAV: stall all further requests
            self._retry(msg)
            return
        # R_FETCH_AT: fetch and run the RMW when data arrives.
        slot = self.cache.insert_slot(block, _L2_IAV, self._on_evict)
        self.cache.c_pinned[slot] = True
        ms = out[0]
        mm = self.mshr.m_meta[ms]
        if mm is None:
            mm = {}
            self.mshr.m_meta[ms] = mm
        mm["atomic_msg"] = msg
        self.fetch_from_dram(block, self._on_dram_data)
