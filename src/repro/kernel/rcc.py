"""Flat-kernel RCC / RCC-WO controllers.

Line-for-line transliterations of :class:`~repro.core.rcc_l1.RCCL1Controller`
and :class:`~repro.core.rcc_l2.RCCL2Controller` hot paths onto
:class:`~repro.kernel.layout.FlatTagArray` columns with table-driven
state dispatch (:mod:`repro.kernel.hot`). Everything observable —
message fields and ordering, stat increments, MSHR bookkeeping, LRU tick
consumption, sanitizer events (same transition points, same
``is not None`` gating) — is preserved exactly; the golden and
differential batteries assert payload bit-identity against the object
kernel.

Cold paths (rollover flush/reset, RENEW fallbacks, DRAM fills, eviction
callbacks) deliberately reuse the parent implementations, which operate
on the flat columns through persistent :class:`FlatLineView` handles —
one implementation, one behavior.
"""

from __future__ import annotations

from heapq import heappush
from typing import Optional

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, \
    MsgKind
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.rcc_l2 import RCCL2Controller, RETRY_DELAY
from repro.core.rcc_wo import RCCWOL1Controller
from repro.gpu.warp import MemOpRecord, Warp
from repro.kernel import hot
from repro.kernel.layout import FlatTagArray
from repro.mem.cache_array import _lru_ticks
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

_L1_V = hot.L1_V
_L1_IV = hot.L1_IV
_L1_NONE = hot.L1_NONE
_L2_V = hot.L2_V
_L2_IV = hot.L2_IV
_L2_IAV = hot.L2_IAV
_L2_NONE = hot.L2_NONE

_RCC_L1_LOAD = hot.RCC_L1_LOAD
_RCC_L2_GETS = hot.RCC_L2_GETS
_RCC_L2_WRITE = hot.RCC_L2_WRITE
_RCC_L2_ATOMIC = hot.RCC_L2_ATOMIC

_A_VHIT = hot.A_VHIT
_A_GRANT = hot.A_GRANT
_A_MERGE_RD = hot.A_MERGE_RD
_A_RETRY = hot.A_RETRY
_A_APPLY = hot.A_APPLY
_A_MERGE_WR = hot.A_MERGE_WR


class FlatRCCL1Controller(RCCL1Controller):
    """RCC L1 with flat-array tag state and table-driven load dispatch."""

    def __init__(self, core_id, engine, cfg, noc, amap, rollover):
        super().__init__(core_id, engine, cfg, noc, amap, rollover)
        self.cache = FlatTagArray(cfg.l1, L1State.I)

    # ------------------------------------------------------------------
    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        mshr = self.mshr
        entry = mshr._entries.get(block)
        if kind is MemOpKind.LOAD:
            cache = self.cache
            slot = cache._tag.get(block)
            if (slot is not None and cache.c_state[slot] == _L1_V
                    and self._read_now() <= cache.c_exp[slot]):
                return False
            if entry is None and len(mshr._entries) >= mshr.capacity:
                return True
            return slot is None and not cache.can_allocate(block)
        return entry is None and len(mshr._entries) >= mshr.capacity

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        cache = self.cache
        slot = cache._tag.get(block)
        rnow = self._read_now()
        st = _L1_NONE if slot is None else cache.c_state[slot]

        if _RCC_L1_LOAD[st] == _A_VHIT and rnow <= cache.c_exp[slot]:
            # V (or VI) hit within the lease.
            stats = self.stats
            stats.loads += 1
            stats.load_hits += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block, now=rnow,
                           exp=cache.c_exp[slot], view="read",
                           epoch=self.rollover.epoch)
            record.read_value = cache.c_value[slot]
            record.logical_ts = (self.rollover.epoch << self.clock.bits) | rnow
            record.order_key = -1  # L1 hit: never visited the L2
            cache.c_lru[slot] = next(_lru_ticks)
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT

        expired = st == _L1_V and rnow > cache.c_exp[slot]

        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        if slot is None and not cache.can_allocate(block):
            return AccessOutcome.STALL  # all ways pinned by transients
        self.stats.loads += 1
        if expired:
            self.stats.load_expired += 1
        self.stats.load_misses += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block, now=rnow, expired=expired,
                       view="read", epoch=self.rollover.epoch)
        entry = self.mshr.allocate(block)
        entry.waiting_loads.append((record, warp, rnow))

        if entry.meta.get("gets_out"):
            return AccessOutcome.MISS  # merge into the outstanding GETS

        old_exp: Optional[int] = None
        if slot is None:
            slot = cache.insert_slot(block, _L1_IV, self._on_evict)
        else:
            if cache.c_value[slot] is not None:
                old_exp = cache.c_exp[slot]
            cache.c_state[slot] = _L1_IV
        cache.c_pinned[slot] = True
        entry.meta["gets_out"] = True
        self.send_to_l2(
            MsgKind.GETS, block, now=rnow, exp=old_exp,
            meta={"expired": expired, "epoch": self.rollover.epoch,
                  "pc": record.prog_index},
        )
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord,
                         warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        self.count_access(record)
        cache = self.cache
        if self.sanitizer is not None:
            vslot = cache._tag.get(block)
            self._emit(EV.L1_STORE_ISSUE, block, now=self._write_now(),
                       view="write", epoch=self.rollover.epoch,
                       atomic=record.kind is MemOpKind.ATOMIC,
                       op=record.seq,
                       copy_exp=(cache.c_exp[vslot] if vslot is not None
                                 and cache.c_state[vslot] == _L1_V else None))
        entry = self.mshr.allocate(block)
        entry.pending_stores.append((record, warp))
        slot = cache._tag.get(block)
        if slot is not None:
            cache.c_pinned[slot] = True  # VI/II transients are not evictable
        kind = (MsgKind.ATOMIC if record.kind is MemOpKind.ATOMIC
                else MsgKind.WRITE)
        self.send_to_l2(
            kind, block, now=self._write_now(), value=record.value,
            meta={"record": record, "warp": warp,
                  "epoch": self.rollover.epoch},
        )
        return AccessOutcome.MISS

    # ------------------------------------------------------------------
    def _on_data(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        ver = self.rollover.clamp(msg.ver, epoch)
        exp = self.rollover.clamp(msg.exp, epoch)
        self._advance_read(ver)
        entry = self.mshr._entries.get(block)

        if msg.meta.get("atomic"):
            self._advance_write(ver)
            self._complete_store(msg, ver)
            return

        cache = self.cache
        slot = cache._tag.get(block)
        if slot is not None:
            cache.c_state[slot] = _L1_V
            cache.c_exp[slot] = exp
            cache.c_value[slot] = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block, ver=ver, exp=exp,
                       now_after=self._read_now(), view="read",
                       epoch=self.rollover.epoch,
                       installed=slot is not None)
        if entry is not None:
            self._deliver_loads(block, entry, msg.value, ver, exp,
                                msg.meta.get("arrival", -1))

    def _deliver_loads(self, block: int, entry, value, ver: int, exp: int,
                       arrival: int) -> None:
        satisfied_any = False
        keep = []
        epoch_bits = self.rollover.epoch << self.clock.bits
        for record, warp, snapshot in entry.waiting_loads:
            if snapshot <= exp:
                record.read_value = value
                record.logical_ts = epoch_bits | (ver if ver > snapshot
                                                  else snapshot)
                record.order_key = arrival
                self.complete(record, warp)
                satisfied_any = True
            else:
                keep.append((record, warp, self._read_now()))
        entry.waiting_loads = keep
        if keep:
            cache = self.cache
            slot = cache._tag.get(block)
            renewable = slot is not None and cache.c_value[slot] is not None
            entry.meta["gets_out"] = True
            self.send_to_l2(
                MsgKind.GETS, block, now=self._read_now(),
                exp=exp if renewable else None,
                meta={"expired": renewable, "epoch": self.rollover.epoch,
                      "pc": keep[0][0].prog_index},
            )
        else:
            entry.meta["gets_out"] = False
            self._maybe_release(block)

    def _on_renew(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        self.stats.renews_received += 1
        exp = self.rollover.clamp(msg.exp, epoch)
        if self.sanitizer is not None:
            self._emit(EV.L1_RENEW, block, exp=exp,
                       epoch=self.rollover.epoch)
        cache = self.cache
        slot = cache._tag.get(block)
        if slot is None or cache.c_value[slot] is None:
            entry = self.mshr._entries.get(block)
            if entry is not None and entry.waiting_loads:
                self.send_to_l2(
                    MsgKind.GETS, block, now=self._read_now(), exp=None,
                    meta={"expired": False, "epoch": self.rollover.epoch,
                          "pc": entry.waiting_loads[0][0].prog_index},
                )
                entry.meta["gets_out"] = True
            return
        cache.c_state[slot] = _L1_V
        cache.c_exp[slot] = exp
        entry = self.mshr._entries.get(block)
        if entry is not None:
            self._deliver_loads(block, entry, cache.c_value[slot], 0, exp,
                                msg.meta.get("arrival", -1))

    def _complete_store(self, msg: Message, ver: int) -> None:
        block = msg.addr
        record: MemOpRecord = msg.meta["record"]
        warp: Warp = msg.meta["warp"]
        entry = self.mshr.get(block)
        if entry is None or (record, warp) not in entry.pending_stores:
            raise self.unhandled("II", msg.kind,
                                 f"no pending store {record!r}")
        entry.pending_stores.remove((record, warp))
        record.logical_ts = (self.rollover.epoch << self.clock.bits) | ver
        record.order_key = msg.meta.get("arrival", -1)
        if record.kind is MemOpKind.ATOMIC:
            record.read_value = msg.value
        self.complete(record, warp)
        cache = self.cache
        slot = cache._tag.get(block)
        if self.sanitizer is not None:
            copy_exp = (cache.c_exp[slot] if slot is not None
                        and cache.c_state[slot] == _L1_V else None)
            self._emit(EV.L1_STORE_ACK, block, ver=ver,
                       now_after=self._write_now(), copy_exp=copy_exp,
                       view="write", op=record.seq,
                       epoch=msg.meta.get("epoch", self.rollover.epoch),
                       cur_epoch=self.rollover.epoch)
        if not entry.pending_stores:
            if (slot is not None and cache.c_state[slot] == _L1_V
                    and not entry.waiting_loads):
                cache.remove(block)
                self.stats.self_invalidations += 1
                if self.sanitizer is not None:
                    self._emit(EV.L1_SELF_INVAL, block,
                               reason="post_store_vi")
        self._maybe_release(block)

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr._entries.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            cache = self.cache
            slot = cache._tag.get(block)
            if slot is not None:
                cache.c_pinned[slot] = False
                if cache.c_state[slot] == _L1_IV:
                    cache.remove(block)


class FlatRCCWOL1Controller(RCCWOL1Controller, FlatRCCL1Controller):
    """Flat RCC-WO L1: split read/write views over the flat hot paths.

    The MRO does all the work: view plumbing (``_read_now`` /
    ``_write_now`` / joins) resolves to :class:`RCCWOL1Controller`, the
    handlers resolve to :class:`FlatRCCL1Controller`.
    """


class FlatRCCL2Controller(RCCL2Controller):
    """RCC L2 bank with flat-array directory state and table dispatch."""

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing,
                 rollover):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing,
                         rollover)
        self.cache = FlatTagArray(cfg.l2_per_bank, L2State.I)

    # ------------------------------------------------------------------
    def _projected_ts(self, msg: Message) -> int:
        m = self.dram.mnow
        n = msg.now or 0
        if n > m:
            m = n
        cache = self.cache
        slot = cache._tag.get(msg.addr)
        if slot is not None:
            e = cache.c_exp[slot]
            if e > m:
                m = e
            v = cache.c_ver[slot]
            if v > m:
                m = v
        return m + self._lease_max2

    def _retry(self, msg: Message) -> None:
        # Flat twin of RCCL2Controller._retry: same cached-callback
        # structure and blocking predicate, reading columns instead of a
        # CacheLine (see the parent for the re-arm rationale).
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            tag = self.cache._tag
            c_state = self.cache.c_state
            c_exp = self.cache.c_exp
            c_ver = self.cache.c_ver
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            engine = self.engine
            rollover = self.rollover
            dram = self.dram
            threshold = rollover.threshold
            lease_max2 = self._lease_max2
            n = msg.now or 0
            atomic = msg.kind is MsgKind.ATOMIC

            ring = getattr(engine, "_ring", None)  # None under legacy engine

            def cb() -> None:
                if not self.frozen and not rollover.in_progress:
                    slot = tag.get(block)
                    m = dram.mnow
                    if n > m:
                        m = n
                    if slot is not None:
                        e = c_exp[slot]
                        if e > m:
                            m = e
                        v = c_ver[slot]
                        if v > m:
                            m = v
                    if m + lease_max2 < threshold:
                        if slot is not None:
                            st = c_state[slot]
                            blocked = (st != _L2_V if atomic
                                       else st == _L2_IAV)
                        elif atomic:
                            blocked = len(entries) >= capacity
                        else:
                            blocked = (len(entries) >= capacity
                                       and block not in entries)
                        if blocked:
                            cyc = engine.now + RETRY_DELAY
                            if ring is not None and cyc < engine._horizon:
                                engine._live += 1
                                b = ring[cyc & _RING_MASK]
                                if not b:
                                    heappush(engine._ring_cycles, cyc)
                                b.append(cb)
                            else:
                                engine.schedule_call(cyc, cb)
                            return
                self.on_message(msg)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message, m_now: int,
                 m_exp: Optional[int]) -> None:
        meta = msg.meta
        if not meta.get("_counted"):
            meta["_counted"] = True
            self.stats.gets += 1
            if meta.get("expired"):
                self.stats.gets_expired += 1
        block = msg.addr
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L2_NONE if slot is None else cache.c_state[slot]
        act = _RCC_L2_GETS[st]

        if act == _A_GRANT:
            self.stats.hits += 1
            self._grant_lease_flat(msg, slot, m_now, m_exp)
            return
        if act == _A_RETRY:
            self._retry(msg)
            return
        if act == _A_MERGE_RD:
            entry = self.mshr.allocate(block)
            if m_now > entry.lastrd:
                entry.lastrd = m_now
            entry.has_read = True
            entry.waiting_loads.append(msg)
            return
        # A_FETCH: miss, fetch from DRAM.
        mshr = self.mshr
        if not (len(mshr._entries) < mshr.capacity
                or block in mshr._entries) \
                or not cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        slot = cache.insert_slot(block, _L2_IV, self._on_evict)
        cache.c_pinned[slot] = True
        entry = mshr.allocate(block)
        if m_now > entry.lastrd:
            entry.lastrd = m_now
        entry.has_read = True
        entry.waiting_loads.append(msg)
        self.fetch_from_dram(block, self._on_dram_data)

    def _grant_lease_flat(self, msg: Message, slot: int, m_now: int,
                          m_exp: Optional[int]) -> None:
        cache = self.cache
        view = cache._views[slot]
        pc = msg.meta.get("pc")
        lease = self.predictor.lease_for(view, m_now, pc)
        prev_exp = cache.c_exp[slot]
        ver = cache.c_ver[slot]
        exp = prev_exp
        t = ver + lease
        if t > exp:
            exp = t
        t = m_now + lease
        if t > exp:
            exp = t
        cache.c_exp[slot] = exp
        cache.c_lru[slot] = next(_lru_ticks)
        arrival = self.next_arrival()
        renewing = (self.renew_enabled and m_exp is not None
                    and m_exp > ver)
        if m_exp is not None and m_exp <= ver:
            self.predictor.on_expired_miss(view, pc)
        if self.sanitizer is not None:
            self._emit(EV.L2_RENEW_GRANT if renewing else EV.L2_READ_GRANT,
                       msg.addr, ver=ver, exp=exp, m_now=m_now,
                       prev_exp=prev_exp, lease=lease,
                       peer=msg.src[1], epoch=self.rollover.epoch)
        if renewing:
            self.stats.renew_grants += 1
            self.predictor.on_renew(view, pc)
            self.send(msg.src, MsgKind.RENEW, msg.addr, exp=exp,
                      meta={"epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
        else:
            self.send(msg.src, MsgKind.DATA, msg.addr, exp=exp,
                      ver=ver, value=cache.c_value[slot],
                      meta={"epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)

    # ------------------------------------------------------------------
    def _on_write(self, msg: Message, m_now: int) -> None:
        meta = msg.meta
        if not meta.get("_counted"):
            meta["_counted"] = True
            self.stats.writes += 1
        block = msg.addr
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L2_NONE if slot is None else cache.c_state[slot]
        act = _RCC_L2_WRITE[st]

        if act == _A_APPLY:
            self.stats.hits += 1
            arrival = self.next_arrival()
            prev_ver = cache.c_ver[slot]
            prev_exp = cache.c_exp[slot]
            # Rules 2+3: past the writer's now, the last write, and every
            # outstanding lease — computed locally, acknowledged instantly.
            ver = prev_exp + 1
            if prev_ver > ver:
                ver = prev_ver
            if m_now > ver:
                ver = m_now
            cache.c_ver[slot] = ver
            cache.c_value[slot] = msg.value
            cache.c_dirty[slot] = True
            cache.c_lru[slot] = next(_lru_ticks)
            self.predictor.on_write(cache._views[slot])
            if self.sanitizer is not None:
                self._emit(EV.L2_WRITE_APPLY, block, ver=ver,
                           prev_ver=prev_ver, prev_exp=prev_exp,
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            self._send_ack(msg, ver, arrival)
            return
        if act == _A_RETRY:
            self._retry(msg)
            return
        if act == _A_MERGE_WR:
            self._merge_write(msg, m_now)
            return
        # A_FETCH: allocate, ack against lastwr/mnow, fetch in background.
        mshr = self.mshr
        if not (len(mshr._entries) < mshr.capacity
                or block in mshr._entries) \
                or not cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        slot = cache.insert_slot(block, _L2_IV, self._on_evict)
        cache.c_pinned[slot] = True
        mshr.allocate(block)
        self._merge_write(msg, m_now)
        self.fetch_from_dram(block, self._on_dram_data)

    # ------------------------------------------------------------------
    def _on_atomic(self, msg: Message, m_now: int) -> None:
        meta = msg.meta
        if not meta.get("_counted"):
            meta["_counted"] = True
            self.stats.atomics += 1
        block = msg.addr
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L2_NONE if slot is None else cache.c_state[slot]
        act = _RCC_L2_ATOMIC[st]

        if act == _A_APPLY:
            self.stats.hits += 1
            arrival = self.next_arrival()
            prev_ver = cache.c_ver[slot]
            prev_exp = cache.c_exp[slot]
            ver = prev_exp + 1
            if prev_ver > ver:
                ver = prev_ver
            if m_now > ver:
                ver = m_now
            old_value = cache.c_value[slot]
            cache.c_ver[slot] = ver
            cache.c_value[slot] = msg.value
            cache.c_dirty[slot] = True
            cache.c_lru[slot] = next(_lru_ticks)
            self.predictor.on_write(cache._views[slot])
            if self.sanitizer is not None:
                self._emit(EV.L2_ATOMIC_APPLY, block, ver=ver,
                           prev_ver=prev_ver, prev_exp=prev_exp,
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            self.send(msg.src, MsgKind.DATA, block, exp=prev_exp,
                      ver=ver, value=old_value,
                      meta={"atomic": True,
                            "record": msg.meta.get("record"),
                            "warp": msg.meta.get("warp"),
                            "epoch": self.rollover.epoch,
                            "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if act == _A_RETRY:  # IV or IAV: stall all further requests
            self._retry(msg)
            return
        # A_FETCH: miss in I — fetch and run the RMW when data arrives.
        if not self.mshr.has_free() or not cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        slot = cache.insert_slot(block, _L2_IAV, self._on_evict)
        cache.c_pinned[slot] = True
        entry = self.mshr.allocate(block)
        if m_now > entry.lastwr:
            entry.lastwr = m_now
        entry.has_write = True
        entry.meta["atomic_msg"] = msg
        self.fetch_from_dram(block, self._on_dram_data)
