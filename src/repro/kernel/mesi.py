"""Flat-kernel MESI controllers (the paper's SC directory baseline).

Thin wrappers over the fused hot kernel — same contract as
:mod:`repro.kernel.rcc`: one :mod:`repro.kernel.hot` call per event does
the table dispatch, stat bumps, sharer bookkeeping, and column writes;
the wrapper performs only the object-boundary work (messages, emits,
completions). Observable behavior is bit-identical to the object
controllers, and the cold paths (DRAM fills, evictions/recalls,
``_apply_write``) reuse the parent implementations through
:class:`FlatLineView` / :class:`FlatMSHREntryView` handles.
"""

from __future__ import annotations

from heapq import heappush

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, \
    MsgKind
from repro.coherence.mesi import MESIL1Controller, MESIL2Controller, \
    RETRY_DELAY
from repro.gpu.warp import MemOpRecord, Warp
from repro.kernel import hot
from repro.kernel.layout import FlatMSHRFile, FlatTagArray, build_l1_ctx, \
    build_l2_ctx
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

_L1_V = hot.L1_V
_L1_IV = hot.L1_IV
_L2_V = hot.L2_V

_R_HIT = hot.R_HIT
_R_STALL = hot.R_STALL
_R_MISS_MERGE = hot.R_MISS_MERGE
_R_MISS_INSERT = hot.R_MISS_INSERT
_R_RETRY = hot.R_RETRY
_R_GRANT = hot.R_GRANT
_R_MERGE_RD = hot.R_MERGE_RD
_R_MERGE_WR = hot.R_MERGE_WR
_R_APPLY = hot.R_APPLY
_R_INV_FANOUT = hot.R_INV_FANOUT
_R_FETCH = hot.R_FETCH


class FlatMESIL1Controller(MESIL1Controller):
    """Write-through MESI L1 with fused hot-kernel dispatch."""

    def __init__(self, core_id, engine, cfg, noc, amap):
        super().__init__(core_id, engine, cfg, noc, amap)
        self.cache = FlatTagArray(cfg.l1, L1State.I)
        self.mshr = FlatMSHRFile(cfg.l1.mshr_entries)
        self._ctx = build_l1_ctx(self.cache, self.mshr, self.stats.c)
        self._out = [0, 0, 0, 0]

    # ------------------------------------------------------------------
    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        return hot.mesi_l1_would_stall(self._ctx, block,
                                       kind is MemOpKind.LOAD)

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        out = self._out
        r = hot.mesi_l1_load(self._ctx, block, out)
        if r == _R_HIT:
            slot = out[0]
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block)
            record.read_value = self.cache.c_value[slot]
            record.logical_ts = self.engine.now
            record.order_key = -1
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT
        if r == _R_STALL:
            return AccessOutcome.STALL
        ms = out[0]
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block)
        self.mshr.m_loads[ms].append((record, warp))
        if r == _R_MISS_MERGE:
            return AccessOutcome.MISS
        if r == _R_MISS_INSERT:
            cache = self.cache
            slot = cache.insert_slot(block, _L1_IV, self._on_evict)
            cache.c_pinned[slot] = True
        self.send_to_l2(MsgKind.GETS, block)
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord,
                         warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        is_atomic = record.kind is MemOpKind.ATOMIC
        out = self._out
        r = hot.mesi_l1_store(self._ctx, block, is_atomic, out)
        if r == _R_STALL:
            return AccessOutcome.STALL
        if self.sanitizer is not None:
            self._emit(EV.L1_STORE_ISSUE, block, atomic=is_atomic)
        self.mshr.m_stores[out[0]].append((record, warp))
        if out[1]:  # held a V copy: write-through, write-no-allocate
            self.cache.remove(block)
            if self.sanitizer is not None:
                self._emit(EV.L1_SELF_INVAL, block, reason="write_through")
        self.send_to_l2(MsgKind.ATOMIC if is_atomic else MsgKind.GETX,
                        block, value=record.value,
                        meta={"record": record, "warp": warp})
        return AccessOutcome.MISS

    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        block = msg.addr
        mshr = self.mshr
        entry = mshr._entries.get(block)
        if msg.meta.get("atomic"):
            self._complete_store(msg, read_value=msg.value)
            return
        cache = self.cache
        slot = cache._tag.get(block)
        inv_after = (entry is not None
                     and entry.meta.pop("inv_after_fill", False))
        safe_count = (entry.meta.pop("safe_count", None)
                      if entry is not None else None)
        if slot is not None:
            if inv_after:
                cache.remove(block)
            else:
                cache.c_state[slot] = _L1_V
                cache.c_value[slot] = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block,
                       installed=slot is not None and not inv_after)
        if entry is not None:
            waiting = entry.waiting_loads
            if inv_after and safe_count is not None:
                deliver, keep = waiting[:safe_count], waiting[safe_count:]
            else:
                deliver, keep = waiting, []
            granted_at = msg.meta.get("granted_at", self.engine.now)
            arrival = msg.meta.get("arrival", -1)
            value = msg.value
            for record, warp in deliver:
                record.read_value = value
                issued = record.issue_cycle
                record.logical_ts = (granted_at if granted_at > issued
                                     else issued)
                record.order_key = arrival
                self.complete(record, warp)
            entry.waiting_loads = keep
            if keep:
                mshr.m_gets_out[entry._slot] = True
                self.send_to_l2(MsgKind.GETS, block)
            else:
                mshr.m_gets_out[entry._slot] = False
            self._maybe_release(block)

    def _on_inv(self, msg: Message) -> None:
        block = msg.addr
        self.stats.invalidations_received += 1
        cache = self.cache
        slot = cache._tag.get(block)
        mshr = self.mshr
        entry = mshr._entries.get(block)
        dropped = slot is not None and cache.c_state[slot] == _L1_V
        if self.sanitizer is not None:
            self._emit(EV.L1_INV, block, dropped=dropped,
                       recall=bool(msg.meta.get("recall")))
        if dropped:
            cache.remove(block)
        if entry is not None and mshr.m_gets_out[entry._slot]:
            entry.meta["inv_after_fill"] = True
            entry.meta.setdefault("safe_count", len(entry.waiting_loads))
        self.send_to_l2(MsgKind.INV_ACK, block,
                        meta={"requester": msg.meta.get("requester"),
                              "recall": bool(msg.meta.get("recall"))})

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr._entries.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            cache = self.cache
            slot = cache._tag.get(block)
            if slot is not None:
                cache.c_pinned[slot] = False
                if cache.c_state[slot] == _L1_IV:
                    cache.remove(block)


class FlatMESIL2Controller(MESIL2Controller):
    """MESI directory bank with fused hot-kernel dispatch."""

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing)
        self.cache = FlatTagArray(cfg.l2_per_bank, L2State.I)
        self.mshr = FlatMSHRFile(cfg.l2_per_bank.mshr_entries)
        # MESI grants no leases; the policy slots of the shared L2 layout
        # are inert placeholders.
        self._ctx = build_l2_ctx(self.cache, self.mshr, self.stats.c, {},
                                 hot.P_FIXED, False, 0, 0, 0, False)
        self._out = [0, 0]
        self._scratch: list = []

    # ------------------------------------------------------------------
    def _retry(self, msg: Message) -> None:
        # Flat twin of MESIL2Controller._retry — same cached callback and
        # blocking predicate over columns (see the parent for rationale).
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            tag = self.cache._tag
            c_state = self.cache.c_state
            c_meta = self.cache.c_meta
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            recalls = self._recalls
            engine = self.engine

            def blocked() -> bool:
                slot = tag.get(block)
                if slot is not None:
                    if c_state[slot] != _L2_V:
                        return False
                    m = c_meta[slot]
                    return (m is not None
                            and m.get("inv_pending") is not None)
                if recalls.get(block):
                    return True
                return len(entries) >= capacity and block not in entries

            ring = getattr(engine, "_ring", None)  # None under legacy engine
            if msg.kind is MsgKind.GETS:
                def cb() -> None:
                    if blocked():
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_gets(msg)
            else:
                atomic = msg.kind is MsgKind.ATOMIC

                def cb() -> None:
                    if blocked():
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_getx(msg, atomic)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message) -> None:
        meta = msg.meta
        counted = bool(meta.get("_counted"))
        meta["_counted"] = True
        block = msg.addr
        out = self._out
        r = hot.mesi_l2_gets(self._ctx, block, counted, msg.src, msg, out)
        if r == _R_GRANT:
            slot = out[0]
            if self.sanitizer is not None:
                self._emit(EV.L2_READ_GRANT, block, peer=msg.src[1],
                           sharers=out[1])
            self.send(msg.src, MsgKind.DATA, block,
                      value=self.cache.c_value[slot],
                      meta={"arrival": self.next_arrival(),
                            "granted_at": self.engine.now},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if r == _R_MERGE_RD:
            return
        if r == _R_RETRY:
            self._retry(msg)
            return
        self._miss_fetch(msg, block, is_read=True)

    def _on_getx(self, msg: Message, atomic: bool) -> None:
        meta = msg.meta
        counted = bool(meta.get("_counted"))
        meta["_counted"] = True
        block = msg.addr
        out = self._out
        scratch = self._scratch
        del scratch[:]
        r = hot.mesi_l2_getx(self._ctx, block, counted, atomic, msg,
                             scratch, out)
        if r == _R_APPLY:
            self._apply_write(msg, self.cache._views[out[0]], atomic)
            return
        if r == _R_INV_FANOUT:
            # Sharer set sorted into scratch and directory blocked
            # in-kernel; send the INVs.
            delay = self.cfg.l2_per_bank.hit_latency
            for sharer in scratch:
                self.send(sharer, MsgKind.INV, block,
                          meta={"requester": msg.src}, delay=delay)
            del scratch[:]
            return
        if r == _R_MERGE_WR:
            return
        if r == _R_RETRY:
            self._retry(msg)
            return
        self._miss_fetch(msg, block, is_read=False, atomic=atomic)

    def _on_inv_ack(self, msg: Message) -> None:
        if msg.meta.get("recall"):
            remaining = self._recalls.get(msg.addr, 0) - 1
            if remaining > 0:
                self._recalls[msg.addr] = remaining
            else:
                self._recalls.pop(msg.addr, None)
            return
        cache = self.cache
        slot = cache._tag.get(msg.addr)
        if slot is None:
            return  # stale ack for an already-evicted block
        m = cache.c_meta[slot]
        pending = m.get("inv_pending") if m is not None else None
        if pending is None:
            return  # nothing is waiting
        pending["remaining"] -= 1
        if pending["remaining"] == 0:
            del m["inv_pending"]
            cache.c_pinned[slot] = False
            self._apply_write(pending["msg"], cache._views[slot],
                              pending["atomic"])
