"""Flat-kernel MESI controllers (the paper's SC directory baseline).

Transliterations of :class:`~repro.coherence.mesi.MESIL1Controller` and
:class:`~repro.coherence.mesi.MESIL2Controller` hot paths onto flat
columns with table dispatch — same contract as :mod:`repro.kernel.rcc`:
observable behavior is bit-identical to the object controllers, and the
cold paths (DRAM fills, evictions/recalls, ``_apply_write``) reuse the
parent implementations through :class:`FlatLineView` handles.
"""

from __future__ import annotations

from heapq import heappush

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, L2State, MemOpKind, \
    MsgKind
from repro.coherence.mesi import MESIL1Controller, MESIL2Controller, \
    RETRY_DELAY
from repro.gpu.warp import MemOpRecord, Warp
from repro.kernel import hot
from repro.kernel.layout import FlatTagArray
from repro.mem.cache_array import _lru_ticks
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

_L1_V = hot.L1_V
_L1_IV = hot.L1_IV
_L1_NONE = hot.L1_NONE
_L2_V = hot.L2_V
_L2_NONE = hot.L2_NONE

_MESI_L1_LOAD = hot.MESI_L1_LOAD
_MESI_L2_GETS = hot.MESI_L2_GETS
_MESI_L2_GETX = hot.MESI_L2_GETX

_A_VHIT = hot.A_VHIT
_A_GRANT = hot.A_GRANT
_A_MERGE_RD = hot.A_MERGE_RD
_A_APPLY = hot.A_APPLY
_A_MERGE_WR = hot.A_MERGE_WR


class FlatMESIL1Controller(MESIL1Controller):
    """Write-through MESI L1 over flat-array tag state."""

    def __init__(self, core_id, engine, cfg, noc, amap):
        super().__init__(core_id, engine, cfg, noc, amap)
        self.cache = FlatTagArray(cfg.l1, L1State.I)

    # ------------------------------------------------------------------
    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        mshr = self.mshr
        entry = mshr._entries.get(block)
        if kind is MemOpKind.LOAD:
            cache = self.cache
            slot = cache._tag.get(block)
            if slot is not None and cache.c_state[slot] == _L1_V:
                return False
            if entry is None and len(mshr._entries) >= mshr.capacity:
                return True
            return slot is None and not cache.can_allocate(block)
        if entry is not None and entry.pending_stores:
            return True
        return entry is None and len(mshr._entries) >= mshr.capacity

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L1_NONE if slot is None else cache.c_state[slot]
        if _MESI_L1_LOAD[st] == _A_VHIT:
            stats = self.stats
            stats.loads += 1
            stats.load_hits += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block)
            record.read_value = cache.c_value[slot]
            record.logical_ts = self.engine.now
            record.order_key = -1
            cache.c_lru[slot] = next(_lru_ticks)
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        if slot is None and not cache.can_allocate(block):
            return AccessOutcome.STALL
        self.stats.loads += 1
        self.stats.load_misses += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block)
        entry = self.mshr.allocate(block)
        entry.waiting_loads.append((record, warp))
        if entry.meta.get("gets_out"):
            return AccessOutcome.MISS
        if slot is None:
            slot = cache.insert_slot(block, _L1_IV, self._on_evict)
        cache.c_state[slot] = _L1_IV
        cache.c_pinned[slot] = True
        entry.meta["gets_out"] = True
        self.send_to_l2(MsgKind.GETS, block)
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord,
                         warp: Warp) -> AccessOutcome:
        shift = self.amap._block_shift
        block = (record.addr >> shift) << shift
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is not None and entry.pending_stores:
            # Same-block stores serialize until the previous ack returns.
            return AccessOutcome.STALL
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        self.count_access(record)
        if self.sanitizer is not None:
            self._emit(EV.L1_STORE_ISSUE, block,
                       atomic=record.kind is MemOpKind.ATOMIC)
        entry = self.mshr.allocate(block)
        entry.pending_stores.append((record, warp))
        cache = self.cache
        slot = cache._tag.get(block)
        if slot is not None and cache.c_state[slot] == _L1_V:
            cache.remove(block)  # write-through, write-no-allocate
            self.stats.self_invalidations += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_SELF_INVAL, block, reason="write_through")
        elif slot is not None:
            cache.c_pinned[slot] = True
        kind = (MsgKind.ATOMIC if record.kind is MemOpKind.ATOMIC
                else MsgKind.GETX)
        self.send_to_l2(kind, block, value=record.value,
                        meta={"record": record, "warp": warp})
        return AccessOutcome.MISS

    # ------------------------------------------------------------------
    def _on_data(self, msg: Message) -> None:
        block = msg.addr
        entry = self.mshr._entries.get(block)
        if msg.meta.get("atomic"):
            self._complete_store(msg, read_value=msg.value)
            return
        cache = self.cache
        slot = cache._tag.get(block)
        inv_after = (entry is not None
                     and entry.meta.pop("inv_after_fill", False))
        safe_count = (entry.meta.pop("safe_count", None)
                      if entry is not None else None)
        if slot is not None:
            if inv_after:
                cache.remove(block)
            else:
                cache.c_state[slot] = _L1_V
                cache.c_value[slot] = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block,
                       installed=slot is not None and not inv_after)
        if entry is not None:
            waiting = entry.waiting_loads
            if inv_after and safe_count is not None:
                deliver, keep = waiting[:safe_count], waiting[safe_count:]
            else:
                deliver, keep = waiting, []
            granted_at = msg.meta.get("granted_at", self.engine.now)
            arrival = msg.meta.get("arrival", -1)
            value = msg.value
            for record, warp in deliver:
                record.read_value = value
                issued = record.issue_cycle
                record.logical_ts = (granted_at if granted_at > issued
                                     else issued)
                record.order_key = arrival
                self.complete(record, warp)
            entry.waiting_loads = keep
            if keep:
                entry.meta["gets_out"] = True
                self.send_to_l2(MsgKind.GETS, block)
            else:
                entry.meta["gets_out"] = False
            self._maybe_release(block)

    def _on_inv(self, msg: Message) -> None:
        block = msg.addr
        self.stats.invalidations_received += 1
        cache = self.cache
        slot = cache._tag.get(block)
        entry = self.mshr._entries.get(block)
        dropped = slot is not None and cache.c_state[slot] == _L1_V
        if self.sanitizer is not None:
            self._emit(EV.L1_INV, block, dropped=dropped,
                       recall=bool(msg.meta.get("recall")))
        if dropped:
            cache.remove(block)
        if entry is not None and entry.meta.get("gets_out"):
            entry.meta["inv_after_fill"] = True
            entry.meta.setdefault("safe_count", len(entry.waiting_loads))
        self.send_to_l2(MsgKind.INV_ACK, block,
                        meta={"requester": msg.meta.get("requester"),
                              "recall": bool(msg.meta.get("recall"))})

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr._entries.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            cache = self.cache
            slot = cache._tag.get(block)
            if slot is not None:
                cache.c_pinned[slot] = False
                if cache.c_state[slot] == _L1_IV:
                    cache.remove(block)


class FlatMESIL2Controller(MESIL2Controller):
    """MESI directory bank over flat-array state."""

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing)
        self.cache = FlatTagArray(cfg.l2_per_bank, L2State.I)

    # ------------------------------------------------------------------
    def _retry(self, msg: Message) -> None:
        # Flat twin of MESIL2Controller._retry — same cached callback and
        # blocking predicate over columns (see the parent for rationale).
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            tag = self.cache._tag
            c_state = self.cache.c_state
            c_meta = self.cache.c_meta
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            recalls = self._recalls
            engine = self.engine

            def blocked() -> bool:
                slot = tag.get(block)
                if slot is not None:
                    if c_state[slot] != _L2_V:
                        return False
                    m = c_meta[slot]
                    return (m is not None
                            and m.get("inv_pending") is not None)
                if recalls.get(block):
                    return True
                return len(entries) >= capacity and block not in entries

            ring = getattr(engine, "_ring", None)  # None under legacy engine
            if msg.kind is MsgKind.GETS:
                def cb() -> None:
                    if blocked():
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_gets(msg)
            else:
                atomic = msg.kind is MsgKind.ATOMIC

                def cb() -> None:
                    if blocked():
                        cyc = engine.now + RETRY_DELAY
                        if ring is not None and cyc < engine._horizon:
                            engine._live += 1
                            b = ring[cyc & _RING_MASK]
                            if not b:
                                heappush(engine._ring_cycles, cyc)
                            b.append(cb)
                        else:
                            engine.schedule_call(cyc, cb)
                    else:
                        self._on_getx(msg, atomic)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message) -> None:
        meta = msg.meta
        if not meta.get("_counted"):
            meta["_counted"] = True
            self.stats.gets += 1
        block = msg.addr
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L2_NONE if slot is None else cache.c_state[slot]
        act = _MESI_L2_GETS[st]
        if act == _A_GRANT:
            m = cache.c_meta[slot]
            if m is not None and m.get("inv_pending") is not None:
                self._retry(msg)
                return
            self.stats.hits += 1
            sharers = cache.c_sharers[slot]
            if sharers is None:
                sharers = set()
                cache.c_sharers[slot] = sharers
            sharers.add(msg.src)
            cache.c_lru[slot] = next(_lru_ticks)
            if self.sanitizer is not None:
                self._emit(EV.L2_READ_GRANT, block, peer=msg.src[1],
                           sharers=len(sharers))
            self.send(msg.src, MsgKind.DATA, block,
                      value=cache.c_value[slot],
                      meta={"arrival": self.next_arrival(),
                            "granted_at": self.engine.now},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if act == _A_MERGE_RD:
            entry = self.mshr.allocate(block)
            entry.waiting_loads.append(msg)
            return
        self._miss_fetch(msg, block, is_read=True)

    def _on_getx(self, msg: Message, atomic: bool) -> None:
        meta = msg.meta
        if not meta.get("_counted"):
            meta["_counted"] = True
            if atomic:
                self.stats.atomics += 1
            else:
                self.stats.writes += 1
        block = msg.addr
        cache = self.cache
        slot = cache._tag.get(block)
        st = _L2_NONE if slot is None else cache.c_state[slot]
        act = _MESI_L2_GETX[st]
        if act == _A_APPLY:
            m = cache.c_meta[slot]
            if m is not None and m.get("inv_pending") is not None:
                self._retry(msg)
                return
            self.stats.hits += 1
            # Sorted so the invalidation order never depends on set
            # iteration order (PYTHONHASHSEED) — as in the object kernel.
            s = cache.c_sharers[slot]
            sharers = sorted(s) if s else []
            if not sharers:
                self._apply_write(msg, cache._views[slot], atomic)
                return
            if m is None:
                m = {}
                cache.c_meta[slot] = m
            m["inv_pending"] = {
                "remaining": len(sharers), "msg": msg, "atomic": atomic,
            }
            cache.c_pinned[slot] = True  # not evictable while collecting acks
            s.clear()
            for sharer in sharers:
                self.stats.invalidations_sent += 1
                self.send(sharer, MsgKind.INV, block,
                          meta={"requester": msg.src},
                          delay=self.cfg.l2_per_bank.hit_latency)
            return
        if act == _A_MERGE_WR:
            entry = self.mshr.allocate(block)
            entry.pending_stores.append((msg, atomic))
            return
        self._miss_fetch(msg, block, is_read=False, atomic=atomic)

    def _on_inv_ack(self, msg: Message) -> None:
        if msg.meta.get("recall"):
            remaining = self._recalls.get(msg.addr, 0) - 1
            if remaining > 0:
                self._recalls[msg.addr] = remaining
            else:
                self._recalls.pop(msg.addr, None)
            return
        cache = self.cache
        slot = cache._tag.get(msg.addr)
        if slot is None:
            return  # stale ack for an already-evicted block
        m = cache.c_meta[slot]
        pending = m.get("inv_pending") if m is not None else None
        if pending is None:
            return  # nothing is waiting
        pending["remaining"] -= 1
        if pending["remaining"] == 0:
            del m["inv_pending"]
            cache.c_pinned[slot] = False
            self._apply_write(pending["msg"], cache._views[slot],
                              pending["atomic"])
