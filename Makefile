# Convenience targets; everything assumes only the in-tree sources
# (PYTHONPATH=src), no install required.

PY       ?= python
PYPATH   := PYTHONPATH=src
JOBS     ?= 4

.PHONY: test test-fast test-exec fuzz fuzz-smoke hostile hostile-smoke \
        sanitize bench report report-par clean-cache perf perf-baseline \
        ablate ablate-smoke build-kernel clean-kernel chaos chaos-smoke

test:            ## tier-1: the full test suite
	$(PYPATH) $(PY) -m pytest -x -q

test-fast:       ## the suite minus the bounded fuzz campaigns
	$(PYPATH) $(PY) -m pytest -x -q -m "not fuzz_smoke"

test-exec:       ## sweep-executor battery: equivalence, cache, faults
	$(PYPATH) $(PY) -m pytest -x -q tests/test_exec_parallel.py \
	    tests/test_exec_cache.py tests/test_exec_fault.py

fuzz-smoke:      ## just the bounded differential fuzz campaigns (<30s)
	$(PYPATH) $(PY) -m pytest -x -q -m fuzz_smoke

sanitize:        ## quick experiment grid + bounded fuzz, invariant-checked
	$(PYPATH) $(PY) -m repro.harness.runner all --quick --sanitize
	$(PYPATH) $(PY) -m repro.fuzz.cli --seed 0 --programs 200 --sanitize

fuzz:            ## a long differential campaign across all protocols
	$(PYPATH) $(PY) -m repro.fuzz.cli --seed 0 --programs 2000 \
	    --fence-density 0.2 --p-atomic 0.1

hostile-smoke:   ## bounded hostile-workload knob fuzz (sanitized, ~1 min)
	$(PYPATH) $(PY) -m repro.fuzz.cli --workloads --runs 10 \
	    --baseline benchmarks/perf_baseline.json

hostile:         ## a deep hostile-lab campaign, archiving any finds
	$(PYPATH) $(PY) -m repro.fuzz.cli --workloads --runs 100 -v \
	    --baseline benchmarks/perf_baseline.json \
	    --save-cells tests/corpus

chaos-smoke:     ## chaos/journal unit batteries + fault-injection matrix
	$(PYPATH) $(PY) -m pytest -x -q tests/test_chaos.py \
	    tests/test_journal.py tests/test_exec_fault.py
	$(PYPATH) $(PY) -m repro.fuzz.cli --chaos --chaos-resume-kinds cells

chaos:           ## full battery: every fault kind + resume round-trips
	$(PYPATH) $(PY) -m repro.fuzz.cli --chaos
	$(PYPATH) $(PY) -m pytest -x -q -m chaos

bench:           ## paper figures/tables under pytest-benchmark
	$(PYPATH) $(PY) -m pytest benchmarks/ --benchmark-only

perf:            ## throughput bench + regression gate vs stored baseline
	$(PYPATH) $(PY) -m repro.perf.cli --quick \
	    --baseline benchmarks/perf_baseline.json --check

perf-baseline:   ## refresh the stored perf baseline from this machine
	$(PYPATH) $(PY) -m repro.perf.cli --quick \
	    --baseline benchmarks/perf_baseline.json --update-baseline

ablate:          ## lease-policy ablation on the bench machine
	$(PYPATH) $(PY) -m repro.perf.cli --lease-ablation

ablate-smoke:    ## small-machine lease ablation + its test batteries
	$(PYPATH) $(PY) -m repro.perf.cli --lease-ablation --quick \
	    --out ablation.json
	$(PYPATH) $(PY) -m pytest -x -q tests/test_lease_policy.py \
	    tests/test_lease_policy_differential.py tests/test_lease_golden.py

report:          ## regenerate every experiment with paper-vs-measured
	$(PYPATH) $(PY) -m repro.harness.runner all

report-par:      ## same, fanned out over JOBS worker processes
	$(PYPATH) $(PY) -m repro.harness.runner all --jobs $(JOBS)

build-kernel:    ## compile the optional flat-kernel C core (mypyc/Cython)
	$(PY) tools/build_kernel.py

clean-kernel:    ## remove the compiled flat-kernel extension
	$(PY) tools/build_kernel.py --clean

clean-cache:     ## drop the on-disk sweep result cache
	rm -rf .rcc-cache
